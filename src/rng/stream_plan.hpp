// Versioned derivation of per-index RNG streams.
//
// A "stream plan" maps (experiment seed, stream tag, index) to the seed of
// an independent RNG stream. Two plans exist:
//
//  * kLegacy (v1) — the historical derive_stream_seed mix chain
//    (random.hpp). Every result produced before the plan versioning
//    existed — the e1/e2 pinned-seed goldens, checkpoint meta rows, the
//    test_sweep_compat goldens — is a v1 artifact, so v1 is frozen: any
//    harness replaying those outputs must keep requesting kLegacy.
//  * kCounter (v2) — counter-based derivation through Philox4x64
//    (philox.hpp): the index-th stream seed is word 0 of the Philox block
//    at counter `index` under key (seed, tag). Seeking to any index is
//    O(1) and the per-(seed, tag) plan is a single keyed object instead of
//    a per-use mix chain, which is what lets batch engines hand out
//    millions of per-query streams without per-query derivation state.
//    New experiments default to v2.
//
// Both versions route through the SFS_RNG_AUDIT machinery
// (stream_audit.hpp): every derivation records its
// (seed, tag, index) -> derived mapping, so a run under SFS_RNG_AUDIT=1
// verifies the whole plan for cross-stream collisions regardless of
// version. Harnesses that stamp results (BENCH_JSON) should emit
// stream_plan_number(version) so the plan in effect is explicit in the
// artifact.
#pragma once

#include <cstdint>

#include "rng/philox.hpp"

namespace sfs::rng {

enum class StreamPlanVersion : std::uint32_t {
  kLegacy = 1,   // derive_stream_seed mix chain (pre-versioning artifacts)
  kCounter = 2,  // Philox counter-offset derivation (default for new work)
};

/// The integer stamped into BENCH_JSON ("stream_plan" key).
[[nodiscard]] constexpr std::uint32_t stream_plan_number(
    StreamPlanVersion v) noexcept {
  return static_cast<std::uint32_t>(v);
}

/// One (experiment seed, stream tag) family of per-index streams under a
/// fixed plan version. Cheap to construct (no allocation); copyable.
class StreamPlan {
 public:
  StreamPlan(std::uint64_t experiment_seed, std::uint64_t stream_tag,
             StreamPlanVersion version) noexcept
      : seed_(experiment_seed), stream_(stream_tag), version_(version) {}

  [[nodiscard]] std::uint64_t experiment_seed() const noexcept {
    return seed_;
  }
  [[nodiscard]] std::uint64_t stream_tag() const noexcept { return stream_; }
  [[nodiscard]] StreamPlanVersion version() const noexcept { return version_; }

  /// Seed of stream `index` (the rep index for replication harnesses, the
  /// batch index for query engines). Audited: records
  /// (seed, tag, index) -> derived when SFS_RNG_AUDIT is on. O(1) for both
  /// versions; for kCounter this is a single Philox block, seekable to any
  /// index without deriving its predecessors.
  [[nodiscard]] std::uint64_t stream_seed(std::uint64_t index) const;

  /// The keyed counter engine backing kCounter derivations, positioned at
  /// draw 0. Callers that want raw counter-offset draws (rather than a
  /// derived seed for a sequential engine) seek it directly. Requires
  /// version() == kCounter.
  [[nodiscard]] Philox4x64 counter_engine() const;

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  StreamPlanVersion version_;
};

}  // namespace sfs::rng
