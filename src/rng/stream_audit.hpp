// Debug recorder for the seed-derivation discipline (docs/PERF.md).
//
// Every Monte-Carlo harness derives each replication's RNG streams as a
// pure function (experiment seed, stream tag, rep) -> derived seed via
// rng::derive_stream_seed. Two *different* triples mapping to the same
// derived seed would silently correlate measurements that the statistics
// assume independent — exactly the bug class the PR 2 mix64-tempering fix
// closed for scaling sweeps. This audit makes that failure loud: when
// enabled, the harnesses route every derivation through
// audited_stream_seed(), which records the triple -> seed mapping in a
// process-wide table and throws std::logic_error the moment two distinct
// triples collide on one derived seed.
//
// Enabling: set the environment variable SFS_RNG_AUDIT to a non-empty
// value other than "0" before the first derivation, or call
// StreamAudit::instance().set_enabled(true) programmatically (tests do).
// Disabled (the default), audited_stream_seed() costs one relaxed atomic
// load over plain derive_stream_seed. The table grows by one entry per
// distinct derivation, so the audit is a debug mode, not a production
// default.
//
// Re-recording the *same* triple -> seed mapping is idempotent and legal:
// repeated harness calls in one process replay their streams. Note the
// audit sees only derivations actually performed in this process — a
// checkpoint-resumed sweep derives seeds just for the cells it computes,
// so cells restored from the checkpoint are not re-checked.
//
// Threading: record() is called concurrently by replication workers; the
// collision table lives behind a base::Mutex with the guarded-by
// capability annotation checked in CI (docs/ANALYSIS.md, "Capability
// annotations"). The enable flag is a relaxed atomic read on the fast
// path.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace sfs::rng {

/// The domain of one stream derivation.
struct StreamTriple {
  std::uint64_t seed = 0;    // experiment seed
  std::uint64_t stream = 0;  // stream tag (0 = graph, ... see docs/PERF.md)
  std::uint64_t rep = 0;     // replication index

  friend bool operator==(const StreamTriple&, const StreamTriple&) = default;
};

/// Process-wide collision-detecting recorder of stream derivations.
/// Thread-safe: harness workers record concurrently.
class StreamAudit {
 public:
  /// The process-wide instance. First use reads SFS_RNG_AUDIT to set the
  /// initial enabled state.
  [[nodiscard]] static StreamAudit& instance();

  [[nodiscard]] bool enabled() const noexcept;
  void set_enabled(bool on) noexcept;

  /// Drops every recorded mapping (enabled state unchanged).
  void reset();

  /// Records triple -> derived. Throws std::logic_error if `derived` was
  /// previously recorded for a *different* triple; recording the same
  /// mapping again is a no-op.
  void record(const StreamTriple& triple, std::uint64_t derived);

  /// Number of distinct derivations recorded so far.
  [[nodiscard]] std::size_t recorded_count() const;

  /// Writes every recorded mapping as CSV rows
  /// (seed,stream,rep,derived_seed), sorted by derived seed.
  void dump(std::ostream& out) const;

 private:
  StreamAudit();
  ~StreamAudit();
  StreamAudit(const StreamAudit&) = delete;
  StreamAudit& operator=(const StreamAudit&) = delete;

  struct Impl;
  Impl* impl_;
};

/// derive_stream_seed + record-if-audit-enabled. The replication harnesses
/// (sim/sweep, sim/scaling) call this instead of derive_stream_seed so a
/// sweep run under SFS_RNG_AUDIT=1 verifies its whole stream plan.
[[nodiscard]] std::uint64_t audited_stream_seed(std::uint64_t experiment_seed,
                                                std::uint64_t stream,
                                                std::uint64_t rep);

}  // namespace sfs::rng
