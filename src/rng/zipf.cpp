#include "rng/zipf.hpp"

#include <cmath>

#include "base/check.hpp"

namespace sfs::rng {

BoundedZipf::BoundedZipf(std::uint32_t d_min, std::uint32_t d_max,
                         double exponent)
    : d_min_(d_min), d_max_(d_max), exponent_(exponent) {
  SFS_REQUIRE(d_min >= 1, "power-law support must start at >= 1");
  SFS_REQUIRE(d_min <= d_max, "d_min must not exceed d_max");
  SFS_REQUIRE(exponent > 0.0, "power-law exponent must be positive");
  std::vector<double> weights;
  weights.reserve(d_max - d_min + 1);
  double total = 0.0;
  double first_moment = 0.0;
  for (std::uint32_t d = d_min; d <= d_max; ++d) {
    const double w = std::pow(static_cast<double>(d), -exponent);
    weights.push_back(w);
    total += w;
    first_moment += w * static_cast<double>(d);
  }
  total_weight_ = total;
  mean_ = first_moment / total;
  table_ = AliasTable(weights);
}

double BoundedZipf::pmf(std::uint32_t d) const noexcept {
  if (d < d_min_ || d > d_max_) return 0.0;
  return std::pow(static_cast<double>(d), -exponent_) / total_weight_;
}

std::uint32_t BoundedZipf::sample(Rng& rng) const {
  return d_min_ + static_cast<std::uint32_t>(table_.sample(rng));
}

std::uint32_t natural_cutoff(std::size_t n, double exponent) {
  SFS_REQUIRE(exponent > 1.0, "natural cutoff needs exponent > 1");
  const double cut =
      std::pow(static_cast<double>(n), 1.0 / (exponent - 1.0));
  return static_cast<std::uint32_t>(std::max(1.0, std::floor(cut)));
}

}  // namespace sfs::rng
