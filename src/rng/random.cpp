#include "rng/random.hpp"

#include <cmath>

namespace sfs::rng {
namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

void Xoshiro256::reseed(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (1ULL << bit)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
      }
      (void)(*this)();
    }
  }
  state_ = acc;
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless method with rejection for exactness.
  SFS_CHECK(n > 0, "uniform_index(0)");
  std::uint64_t x = u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (low < threshold) {
      x = u64();
      m = static_cast<__uint128_t>(x) * n;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  SFS_CHECK(lo <= hi, "uniform_int: empty range");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range: return raw bits.
  if (span == 0) return static_cast<std::int64_t>(u64());
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::uniform() noexcept {
  return static_cast<double>(u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential() noexcept {
  // -log(1 - U); 1 - U is in (0, 1] so the log is finite.
  return -std::log(1.0 - uniform());
}

std::uint64_t Rng::geometric(double p) noexcept {
  SFS_CHECK(p > 0.0 && p <= 1.0, "geometric: p out of (0,1]");
  if (p >= 1.0) return 0;
  // Inversion: floor(log(1-U) / log(1-p)).
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) /
                                               std::log1p(-p)));
}

std::vector<std::uint64_t> Rng::sample_without_replacement(std::uint64_t n,
                                                           std::uint64_t k) {
  SFS_REQUIRE(k <= n, "cannot sample more items than the population");
  // Floyd's algorithm: O(k) expected time, O(k) memory.
  std::vector<std::uint64_t> result;
  result.reserve(static_cast<std::size_t>(k));
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = uniform_index(j + 1);
    bool seen = false;
    for (const std::uint64_t v : result) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    result.push_back(seen ? j : t);
  }
  return result;
}

Rng Rng::fork(std::uint64_t tag) noexcept {
  const auto s = engine_.state();
  std::uint64_t h = mix64(s[0] ^ mix64(tag));
  h = mix64(h ^ s[2]);
  // Advance the parent so that repeated forks with the same tag differ.
  h ^= u64();
  return Rng(h);
}

std::uint64_t derive_seed(std::uint64_t experiment_seed,
                          std::uint64_t rep) noexcept {
  return mix64(experiment_seed ^ mix64(0x5eedULL + rep));
}

std::uint64_t derive_stream_seed(std::uint64_t experiment_seed,
                                 std::uint64_t stream,
                                 std::uint64_t rep) noexcept {
  // Stream 0 coincides with derive_seed(experiment_seed, rep) by
  // construction (x ^ 0 == x): the historical harness seeds (graph stream
  // untagged, other streams tagged by XOR) are load-bearing for
  // reproducing recorded experiment tables.
  return derive_seed(experiment_seed ^ stream, rep);
}

}  // namespace sfs::rng
