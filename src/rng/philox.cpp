#include "rng/philox.hpp"

namespace sfs::rng {

namespace {

// Multiplication constants and Weyl key increments from the Philox paper
// (the same values shipped by Random123's philox4x64).
constexpr std::uint64_t kMul0 = 0xD2E7470EE14C6C93ULL;
constexpr std::uint64_t kMul1 = 0xCA5A826395121157ULL;
constexpr std::uint64_t kWeyl0 = 0x9E3779B97F4A7C15ULL;  // golden ratio
constexpr std::uint64_t kWeyl1 = 0xBB67AE8584CAA73BULL;  // sqrt(3) - 1

inline std::uint64_t mulhilo(std::uint64_t a, std::uint64_t b,
                             std::uint64_t& hi) noexcept {
  const unsigned __int128 p =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  hi = static_cast<std::uint64_t>(p >> 64);
  return static_cast<std::uint64_t>(p);
}

}  // namespace

void Philox4x64::seek(std::uint64_t draw) noexcept {
  block_ = draw / kBlockSize;
  buffer_ = block_at(block_);
  sub_ = static_cast<std::uint32_t>(draw % kBlockSize);
}

std::array<std::uint64_t, 4> Philox4x64::block_at(
    std::uint64_t block) const noexcept {
  std::array<std::uint64_t, 4> c{block, 0, 0, 0};
  std::uint64_t k0 = key_[0];
  std::uint64_t k1 = key_[1];
  for (unsigned round = 0; round < kRounds; ++round) {
    std::uint64_t hi0 = 0;
    std::uint64_t hi1 = 0;
    const std::uint64_t lo0 = mulhilo(kMul0, c[0], hi0);
    const std::uint64_t lo1 = mulhilo(kMul1, c[2], hi1);
    c = {hi1 ^ c[1] ^ k0, lo1, hi0 ^ c[3] ^ k1, lo0};
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  return c;
}

}  // namespace sfs::rng
