// Sampling from discrete (weighted) distributions.
//
// Three samplers with different trade-offs, all used by the graph
// generators:
//
//  * AliasTable      — static weights, O(n) build, O(1) sample.
//  * CdfSampler      — static weights, O(n) build, O(log n) sample; cheap to
//                      build, used for one-shot distributions (e.g. the
//                      Kleinberg long-range distance law).
//  * FenwickSampler  — dynamic non-negative weights with O(log n) update and
//                      O(log n) sample; used where preferential weights
//                      change during generation and the repeat-array trick
//                      does not apply.
//  * RepeatArray     — the classic preferential-attachment structure: a bag
//                      of vertex ids where each id appears once per unit of
//                      (integer) weight; O(1) append and O(1) uniform pick.
//  * BucketedSampler — dynamic integer weights with O(1) update and O(1)
//                      expected sample via power-of-two weight classes;
//                      replaces the O(total-weight) memory of RepeatArray
//                      and the O(log n) updates of FenwickSampler where
//                      weights both grow and shrink (the Overlay join
//                      path under churn).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "rng/random.hpp"

namespace sfs::rng {

/// Walker alias method for sampling i with probability w[i] / sum(w).
/// Weights must be non-negative with a strictly positive sum.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights);

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Samples an index in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;        // acceptance probability per slot
  std::vector<std::uint32_t> alias_;  // fallback outcome per slot
};

/// Inverse-CDF sampler over static weights (binary search on the cumulative
/// sum). Also exposes the total weight and per-index probabilities, which
/// the tests use to validate the generators' attachment laws.
class CdfSampler {
 public:
  CdfSampler() = default;
  explicit CdfSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  [[nodiscard]] double total_weight() const noexcept {
    return cdf_.empty() ? 0.0 : cdf_.back();
  }
  /// Probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const;

  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Fenwick-tree sampler over dynamically updatable non-negative weights.
class FenwickSampler {
 public:
  FenwickSampler() = default;
  /// Creates `n` outcomes, all with weight 0.
  explicit FenwickSampler(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] double weight(std::size_t i) const;

  /// Adds delta (may be negative; resulting weight must stay >= 0).
  void add(std::size_t i, double delta);
  void set_weight(std::size_t i, double w);

  /// Appends a new outcome with the given weight; returns its index.
  std::size_t push_back(double w);

  /// Samples i with probability weight(i) / total_weight(). Requires a
  /// strictly positive total weight.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  [[nodiscard]] double prefix_sum(std::size_t i) const;  // sum of [0, i)

  std::vector<double> tree_;  // 1-based Fenwick array
  std::size_t n_ = 0;
  double total_ = 0.0;
};

/// Bag of ids supporting O(1) "append one unit of weight for id" and O(1)
/// uniform pick; picking uniformly from the bag samples ids proportionally
/// to how many units each has received. This is the exact structure used by
/// preferential attachment (one unit per received edge endpoint).
class RepeatArray {
 public:
  RepeatArray() = default;

  void reserve(std::size_t capacity) { items_.reserve(capacity); }
  void push(std::uint32_t id) { items_.push_back(id); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  /// Uniform element of the bag; requires non-empty.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Number of units held by `id` (O(size); for tests only).
  [[nodiscard]] std::size_t count(std::uint32_t id) const noexcept;

 private:
  std::vector<std::uint32_t> items_;
};

/// Dynamic integer-weight sampler with O(1) updates and O(1) expected
/// sampling, organized as power-of-two weight classes ("buckets").
///
/// Ids live in the bucket for their weight's bit width: bucket k holds the
/// ids with weight in [2^k, 2^(k+1)). Sampling draws a point uniformly in
/// [0, total_weight), walks the (at most 64, in practice ~log(max degree))
/// non-empty buckets to find the one the point lands in, then
/// rejection-samples inside the bucket: pick a uniform slot, accept id with
/// probability weight(id) / 2^(k+1) (>= 1/2 by the class invariant, so the
/// expected number of rounds is < 2). The result is exactly
/// weight(i) / total_weight per id — the same distribution as RepeatArray
/// over the same integer weights — without RepeatArray's O(total weight)
/// memory or its append-only restriction.
///
/// Deterministic: the same construction/update sequence plus the same Rng
/// stream reproduces the same samples on every platform. Updates move at
/// most one id between buckets via swap-remove, so they are O(1)
/// unconditionally.
class BucketedSampler {
 public:
  BucketedSampler() = default;
  /// Creates `n` outcomes, all with weight 0.
  explicit BucketedSampler(std::size_t n) { resize(n); }

  /// Number of outcomes (including zero-weight ones).
  [[nodiscard]] std::size_t size() const noexcept { return weight_.size(); }
  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t weight(std::size_t id) const;

  /// Drops all outcomes and weights.
  void clear() noexcept;
  /// Grows to `n` outcomes (new ids get weight 0). Shrinking is not
  /// supported; set weights to 0 instead.
  void resize(std::size_t n);
  /// Appends a new outcome with the given weight; returns its id.
  std::size_t push_back(std::uint64_t w);

  void set_weight(std::size_t id, std::uint64_t w);
  /// Adds delta (may be negative; resulting weight must stay >= 0).
  void add(std::size_t id, std::int64_t delta);

  /// Samples id with probability weight(id) / total_weight(). Requires a
  /// strictly positive total weight.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  static constexpr std::uint32_t kNoBucket = 64;
  [[nodiscard]] static std::uint32_t bucket_of(std::uint64_t w) noexcept;
  void place(std::size_t id, std::uint64_t w);
  void remove(std::size_t id);

  struct Bucket {
    std::vector<std::uint32_t> ids;
    std::uint64_t total = 0;  // sum of member weights
  };

  std::array<Bucket, 64> buckets_;
  std::vector<std::uint64_t> weight_;
  std::vector<std::uint32_t> pos_;  // index of id within its bucket's ids
  std::uint64_t total_ = 0;
};

}  // namespace sfs::rng
