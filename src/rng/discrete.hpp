// Sampling from discrete (weighted) distributions.
//
// Three samplers with different trade-offs, all used by the graph
// generators:
//
//  * AliasTable      — static weights, O(n) build, O(1) sample.
//  * CdfSampler      — static weights, O(n) build, O(log n) sample; cheap to
//                      build, used for one-shot distributions (e.g. the
//                      Kleinberg long-range distance law).
//  * FenwickSampler  — dynamic non-negative weights with O(log n) update and
//                      O(log n) sample; used where preferential weights
//                      change during generation and the repeat-array trick
//                      does not apply.
//  * RepeatArray     — the classic preferential-attachment structure: a bag
//                      of vertex ids where each id appears once per unit of
//                      (integer) weight; O(1) append and O(1) uniform pick.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/random.hpp"

namespace sfs::rng {

/// Walker alias method for sampling i with probability w[i] / sum(w).
/// Weights must be non-negative with a strictly positive sum.
class AliasTable {
 public:
  AliasTable() = default;
  explicit AliasTable(std::span<const double> weights);

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

  /// Samples an index in [0, size()).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;        // acceptance probability per slot
  std::vector<std::uint32_t> alias_;  // fallback outcome per slot
};

/// Inverse-CDF sampler over static weights (binary search on the cumulative
/// sum). Also exposes the total weight and per-index probabilities, which
/// the tests use to validate the generators' attachment laws.
class CdfSampler {
 public:
  CdfSampler() = default;
  explicit CdfSampler(std::span<const double> weights);

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cdf_.empty(); }
  [[nodiscard]] double total_weight() const noexcept {
    return cdf_.empty() ? 0.0 : cdf_.back();
  }
  /// Probability of outcome i.
  [[nodiscard]] double probability(std::size_t i) const;

  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Fenwick-tree sampler over dynamically updatable non-negative weights.
class FenwickSampler {
 public:
  FenwickSampler() = default;
  /// Creates `n` outcomes, all with weight 0.
  explicit FenwickSampler(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] double weight(std::size_t i) const;

  /// Adds delta (may be negative; resulting weight must stay >= 0).
  void add(std::size_t i, double delta);
  void set_weight(std::size_t i, double w);

  /// Appends a new outcome with the given weight; returns its index.
  std::size_t push_back(double w);

  /// Samples i with probability weight(i) / total_weight(). Requires a
  /// strictly positive total weight.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

 private:
  [[nodiscard]] double prefix_sum(std::size_t i) const;  // sum of [0, i)

  std::vector<double> tree_;  // 1-based Fenwick array
  std::size_t n_ = 0;
  double total_ = 0.0;
};

/// Bag of ids supporting O(1) "append one unit of weight for id" and O(1)
/// uniform pick; picking uniformly from the bag samples ids proportionally
/// to how many units each has received. This is the exact structure used by
/// preferential attachment (one unit per received edge endpoint).
class RepeatArray {
 public:
  RepeatArray() = default;

  void reserve(std::size_t capacity) { items_.reserve(capacity); }
  void push(std::uint32_t id) { items_.push_back(id); }

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

  /// Uniform element of the bag; requires non-empty.
  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

  /// Number of units held by `id` (O(size); for tests only).
  [[nodiscard]] std::size_t count(std::uint32_t id) const noexcept;

 private:
  std::vector<std::uint32_t> items_;
};

}  // namespace sfs::rng
