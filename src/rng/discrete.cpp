#include "rng/discrete.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <numeric>

#include "base/check.hpp"

namespace sfs::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  SFS_REQUIRE(n > 0, "AliasTable needs at least one outcome");
  double total = 0.0;
  for (const double w : weights) {
    SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
    total += w;
  }
  SFS_REQUIRE(total > 0.0, "AliasTable needs a positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically 1.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  SFS_REQUIRE(!empty(), "sampling from an empty AliasTable");
  const auto slot = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[slot] ? slot : alias_[slot];
}

CdfSampler::CdfSampler(std::span<const double> weights) {
  SFS_REQUIRE(!weights.empty(), "CdfSampler needs at least one outcome");
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
    acc += w;
    cdf_.push_back(acc);
  }
  SFS_REQUIRE(acc > 0.0, "CdfSampler needs a positive total weight");
}

double CdfSampler::probability(std::size_t i) const {
  SFS_REQUIRE(i < cdf_.size(), "outcome index out of range");
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - lo) / total_weight();
}

std::size_t CdfSampler::sample(Rng& rng) const {
  SFS_REQUIRE(!empty(), "sampling from an empty CdfSampler");
  const double x = rng.uniform() * total_weight();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

FenwickSampler::FenwickSampler(std::size_t n) : tree_(n + 1, 0.0), n_(n) {}

double FenwickSampler::prefix_sum(std::size_t i) const {
  double s = 0.0;
  for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
  return s;
}

double FenwickSampler::weight(std::size_t i) const {
  SFS_REQUIRE(i < n_, "outcome index out of range");
  return prefix_sum(i + 1) - prefix_sum(i);
}

void FenwickSampler::add(std::size_t i, double delta) {
  SFS_REQUIRE(i < n_, "outcome index out of range");
  for (std::size_t j = i + 1; j <= n_; j += j & (~j + 1)) tree_[j] += delta;
  total_ += delta;
  SFS_CHECK(total_ > -1e-9, "total weight became negative");
}

void FenwickSampler::set_weight(std::size_t i, double w) {
  SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weight must be finite, >= 0");
  add(i, w - weight(i));
}

std::size_t FenwickSampler::push_back(double w) {
  SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weight must be finite, >= 0");
  // The Fenwick array is 1-based; ensure the index-0 sentinel exists (the
  // default constructor leaves the vector empty).
  if (tree_.empty()) tree_.push_back(0.0);
  // Grow the tree by one leaf. Rebuilding the affected path keeps push_back
  // amortized O(log n): appending leaf n+1 only requires its own node, whose
  // value is the sum of the trailing block it covers.
  ++n_;
  tree_.push_back(0.0);
  const std::size_t j = n_;  // 1-based position of the new leaf
  const std::size_t block = j & (~j + 1);
  // Node j covers leaves (j - block, j]; the new leaf contributes w and the
  // previously existing leaves contribute prefix(j-1) - prefix(j-block).
  const double below = prefix_sum(j - 1) - prefix_sum(j - block);
  tree_[j] = below + w;
  total_ += w;
  return n_ - 1;
}

std::size_t FenwickSampler::sample(Rng& rng) const {
  SFS_REQUIRE(total_ > 0.0, "sampling from an empty FenwickSampler");
  double x = rng.uniform() * total_;
  // Standard Fenwick descend: find smallest i with prefix_sum(i) > x.
  std::size_t pos = 0;
  std::size_t mask = std::bit_floor(n_);
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= n_ && tree_[next] <= x) {
      x -= tree_[next];
      pos = next;
    }
  }
  // pos is the count of leaves whose cumulative weight is <= x.
  return std::min(pos, n_ - 1);
}

std::uint32_t RepeatArray::sample(Rng& rng) const {
  SFS_REQUIRE(!items_.empty(), "sampling from an empty RepeatArray");
  return items_[static_cast<std::size_t>(rng.uniform_index(items_.size()))];
}

std::size_t RepeatArray::count(std::uint32_t id) const noexcept {
  return static_cast<std::size_t>(std::count(items_.begin(), items_.end(),
                                             id));
}

std::uint32_t BucketedSampler::bucket_of(std::uint64_t w) noexcept {
  // Bucket k holds weights in [2^k, 2^(k+1)); weight 0 lives in no bucket.
  return w == 0 ? kNoBucket
                : static_cast<std::uint32_t>(std::bit_width(w) - 1);
}

std::uint64_t BucketedSampler::weight(std::size_t id) const {
  SFS_REQUIRE(id < weight_.size(), "outcome index out of range");
  return weight_[id];
}

void BucketedSampler::clear() noexcept {
  for (auto& b : buckets_) {
    b.ids.clear();
    b.total = 0;
  }
  weight_.clear();
  pos_.clear();
  total_ = 0;
}

void BucketedSampler::resize(std::size_t n) {
  SFS_REQUIRE(n >= weight_.size(), "BucketedSampler cannot shrink");
  SFS_REQUIRE(n <= std::numeric_limits<std::uint32_t>::max(),
              "BucketedSampler ids are 32-bit");
  weight_.resize(n, 0);
  pos_.resize(n, 0);
}

std::size_t BucketedSampler::push_back(std::uint64_t w) {
  const std::size_t id = weight_.size();
  resize(id + 1);
  if (w != 0) place(id, w);
  return id;
}

void BucketedSampler::place(std::size_t id, std::uint64_t w) {
  Bucket& b = buckets_[bucket_of(w)];
  pos_[id] = static_cast<std::uint32_t>(b.ids.size());
  b.ids.push_back(static_cast<std::uint32_t>(id));
  b.total += w;
  weight_[id] = w;
  total_ += w;
}

void BucketedSampler::remove(std::size_t id) {
  const std::uint64_t w = weight_[id];
  Bucket& b = buckets_[bucket_of(w)];
  // Swap-remove: the displaced last member inherits the vacated slot.
  const std::uint32_t slot = pos_[id];
  const std::uint32_t last = b.ids.back();
  b.ids[slot] = last;
  pos_[last] = slot;
  b.ids.pop_back();
  b.total -= w;
  weight_[id] = 0;
  total_ -= w;
}

void BucketedSampler::set_weight(std::size_t id, std::uint64_t w) {
  SFS_REQUIRE(id < weight_.size(), "outcome index out of range");
  const std::uint64_t old = weight_[id];
  if (old == w) return;
  if (old != 0 && bucket_of(old) == bucket_of(w)) {
    // Same weight class: adjust totals in place, no membership churn.
    Bucket& b = buckets_[bucket_of(old)];
    b.total += w - old;
    total_ += w - old;
    weight_[id] = w;
    return;
  }
  if (old != 0) remove(id);
  if (w != 0) place(id, w);
}

void BucketedSampler::add(std::size_t id, std::int64_t delta) {
  SFS_REQUIRE(id < weight_.size(), "outcome index out of range");
  const std::uint64_t old = weight_[id];
  SFS_REQUIRE(delta >= 0 ||
                  old >= static_cast<std::uint64_t>(-delta),
              "weight would become negative");
  set_weight(id, old + static_cast<std::uint64_t>(delta));
}

std::size_t BucketedSampler::sample(Rng& rng) const {
  SFS_REQUIRE(total_ > 0, "sampling from an empty BucketedSampler");
  // Land a uniform point in the concatenated bucket totals. Scanning the
  // (<= 64) buckets top-down visits heavy classes first, so the expected
  // number of buckets inspected is O(1) for the skewed weight profiles
  // preferential attachment produces.
  std::uint64_t x = rng.uniform_index(total_);
  for (std::uint32_t k = 64; k-- > 0;) {
    const Bucket& b = buckets_[k];
    if (b.total == 0) continue;
    if (x >= b.total) {
      x -= b.total;
      continue;
    }
    // Rejection inside the class: every member weight is >= 2^k, i.e. at
    // least half the class bound 2^(k+1), so each round accepts with
    // probability > 1/2 and the loop terminates in < 2 expected rounds.
    const std::uint64_t bound = k + 1 >= 64
                                    ? std::numeric_limits<std::uint64_t>::max()
                                    : (std::uint64_t{1} << (k + 1));
    for (;;) {
      const auto slot =
          static_cast<std::size_t>(rng.uniform_index(b.ids.size()));
      const std::uint32_t id = b.ids[slot];
      if (rng.uniform_index(bound) < weight_[id]) return id;
    }
  }
  SFS_CHECK(false, "BucketedSampler: positive total but no non-empty bucket");
  return 0;
}

}  // namespace sfs::rng
