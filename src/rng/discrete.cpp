#include "rng/discrete.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/check.hpp"

namespace sfs::rng {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  SFS_REQUIRE(n > 0, "AliasTable needs at least one outcome");
  double total = 0.0;
  for (const double w : weights) {
    SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
    total += w;
  }
  SFS_REQUIRE(total > 0.0, "AliasTable needs a positive total weight");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers are numerically 1.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasTable::sample(Rng& rng) const {
  SFS_REQUIRE(!empty(), "sampling from an empty AliasTable");
  const auto slot = static_cast<std::size_t>(rng.uniform_index(prob_.size()));
  return rng.uniform() < prob_[slot] ? slot : alias_[slot];
}

CdfSampler::CdfSampler(std::span<const double> weights) {
  SFS_REQUIRE(!weights.empty(), "CdfSampler needs at least one outcome");
  cdf_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weights must be finite, >= 0");
    acc += w;
    cdf_.push_back(acc);
  }
  SFS_REQUIRE(acc > 0.0, "CdfSampler needs a positive total weight");
}

double CdfSampler::probability(std::size_t i) const {
  SFS_REQUIRE(i < cdf_.size(), "outcome index out of range");
  const double lo = i == 0 ? 0.0 : cdf_[i - 1];
  return (cdf_[i] - lo) / total_weight();
}

std::size_t CdfSampler::sample(Rng& rng) const {
  SFS_REQUIRE(!empty(), "sampling from an empty CdfSampler");
  const double x = rng.uniform() * total_weight();
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), x);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

FenwickSampler::FenwickSampler(std::size_t n) : tree_(n + 1, 0.0), n_(n) {}

double FenwickSampler::prefix_sum(std::size_t i) const {
  double s = 0.0;
  for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
  return s;
}

double FenwickSampler::weight(std::size_t i) const {
  SFS_REQUIRE(i < n_, "outcome index out of range");
  return prefix_sum(i + 1) - prefix_sum(i);
}

void FenwickSampler::add(std::size_t i, double delta) {
  SFS_REQUIRE(i < n_, "outcome index out of range");
  for (std::size_t j = i + 1; j <= n_; j += j & (~j + 1)) tree_[j] += delta;
  total_ += delta;
  SFS_CHECK(total_ > -1e-9, "total weight became negative");
}

void FenwickSampler::set_weight(std::size_t i, double w) {
  SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weight must be finite, >= 0");
  add(i, w - weight(i));
}

std::size_t FenwickSampler::push_back(double w) {
  SFS_REQUIRE(w >= 0.0 && std::isfinite(w), "weight must be finite, >= 0");
  // The Fenwick array is 1-based; ensure the index-0 sentinel exists (the
  // default constructor leaves the vector empty).
  if (tree_.empty()) tree_.push_back(0.0);
  // Grow the tree by one leaf. Rebuilding the affected path keeps push_back
  // amortized O(log n): appending leaf n+1 only requires its own node, whose
  // value is the sum of the trailing block it covers.
  ++n_;
  tree_.push_back(0.0);
  const std::size_t j = n_;  // 1-based position of the new leaf
  const std::size_t block = j & (~j + 1);
  // Node j covers leaves (j - block, j]; the new leaf contributes w and the
  // previously existing leaves contribute prefix(j-1) - prefix(j-block).
  const double below = prefix_sum(j - 1) - prefix_sum(j - block);
  tree_[j] = below + w;
  total_ += w;
  return n_ - 1;
}

std::size_t FenwickSampler::sample(Rng& rng) const {
  SFS_REQUIRE(total_ > 0.0, "sampling from an empty FenwickSampler");
  double x = rng.uniform() * total_;
  // Standard Fenwick descend: find smallest i with prefix_sum(i) > x.
  std::size_t pos = 0;
  std::size_t mask = std::bit_floor(n_);
  for (; mask > 0; mask >>= 1) {
    const std::size_t next = pos + mask;
    if (next <= n_ && tree_[next] <= x) {
      x -= tree_[next];
      pos = next;
    }
  }
  // pos is the count of leaves whose cumulative weight is <= x.
  return std::min(pos, n_ - 1);
}

std::uint32_t RepeatArray::sample(Rng& rng) const {
  SFS_REQUIRE(!items_.empty(), "sampling from an empty RepeatArray");
  return items_[static_cast<std::size_t>(rng.uniform_index(items_.size()))];
}

std::size_t RepeatArray::count(std::uint32_t id) const noexcept {
  return static_cast<std::size_t>(std::count(items_.begin(), items_.end(),
                                             id));
}

}  // namespace sfs::rng
