#include "rng/stream_audit.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "base/sync.hpp"
#include "base/thread_annotations.hpp"
#include "rng/random.hpp"

namespace sfs::rng {

struct StreamAudit::Impl {
  std::atomic<bool> enabled{false};
  mutable base::Mutex mutex;
  // derived seed -> the triple that produced it. One entry per distinct
  // derivation; collisions are detected at insertion. Harness workers
  // record concurrently — the capability annotation makes "only under
  // mutex" a compile-time property of every access below.
  std::unordered_map<std::uint64_t, StreamTriple> derivations
      SFS_GUARDED_BY(mutex);
};

namespace {

bool env_audit_enabled() {
  const char* v = std::getenv("SFS_RNG_AUDIT");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

StreamAudit::StreamAudit() : impl_(new Impl) {
  impl_->enabled.store(env_audit_enabled(), std::memory_order_relaxed);
}

StreamAudit::~StreamAudit() { delete impl_; }

StreamAudit& StreamAudit::instance() {
  static StreamAudit audit;
  return audit;
}

bool StreamAudit::enabled() const noexcept {
  return impl_->enabled.load(std::memory_order_relaxed);
}

void StreamAudit::set_enabled(bool on) noexcept {
  impl_->enabled.store(on, std::memory_order_relaxed);
}

void StreamAudit::reset() {
  const base::MutexLock lock(impl_->mutex);
  impl_->derivations.clear();
}

void StreamAudit::record(const StreamTriple& triple, std::uint64_t derived) {
  const base::MutexLock lock(impl_->mutex);
  const auto [it, inserted] = impl_->derivations.emplace(derived, triple);
  if (inserted || it->second == triple) return;
  std::ostringstream os;
  os << "RNG stream collision: derived seed " << derived
     << " produced by both (seed=" << it->second.seed
     << ", stream=" << it->second.stream << ", rep=" << it->second.rep
     << ") and (seed=" << triple.seed << ", stream=" << triple.stream
     << ", rep=" << triple.rep << ")";
  // SFS_LINT_ALLOW(check-discipline): the collision report interpolates both colliding triples; SFS_CHECK's expression text would be a meaningless "false"
  throw std::logic_error(os.str());
}

std::size_t StreamAudit::recorded_count() const {
  const base::MutexLock lock(impl_->mutex);
  return impl_->derivations.size();
}

void StreamAudit::dump(std::ostream& out) const {
  std::vector<std::pair<std::uint64_t, StreamTriple>> rows;
  {
    const base::MutexLock lock(impl_->mutex);
    rows.assign(impl_->derivations.begin(), impl_->derivations.end());
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Plain CSV by hand: every field is numeric, and rng/ stays below sim/
  // in the layering (sim/csv depends on nothing, but the dependency arrow
  // between layers should still point one way).
  out << "seed,stream,rep,derived_seed\n";
  for (const auto& [derived, t] : rows) {
    out << t.seed << ',' << t.stream << ',' << t.rep << ',' << derived
        << '\n';
  }
}

std::uint64_t audited_stream_seed(std::uint64_t experiment_seed,
                                  std::uint64_t stream, std::uint64_t rep) {
  const std::uint64_t derived =
      derive_stream_seed(experiment_seed, stream, rep);
  StreamAudit& audit = StreamAudit::instance();
  if (audit.enabled()) {
    audit.record(StreamTriple{experiment_seed, stream, rep}, derived);
  }
  return derived;
}

}  // namespace sfs::rng
