// Counter-based random number generation (Philox).
//
// Philox4x64-10 (Salmon, Moraes, Dror & Shaw, "Parallel random numbers: as
// easy as 1, 2, 3", SC'11) is a bijective keyed permutation of a 256-bit
// counter. Unlike the sequential xoshiro engine in random.hpp, the k-th
// output is a pure function of (key, k), which gives two properties the
// stream-plan machinery wants:
//
//  * O(1) seek(draw): jumping to draw index k costs one block encryption,
//    not k advances. A per-query stream is "the draws at counter offset q"
//    of one keyed engine instead of a freshly constructed engine per query.
//  * keyed independence: streams for different (seed, stream tag) pairs use
//    different keys, so they are decorrelated by construction rather than
//    by tempering the seed.
//
// The engine satisfies std::uniform_random_bit_generator, so it can be used
// anywhere Xoshiro256 can. Statistical quality: Philox4x64-10 passes
// BigCrush/PractRand (it is the reference counter-based generator shipped
// by Random123, NumPy and JAX).
//
// Period: the engine exposes a 64-bit block counter = 2^66 draws per key,
// far beyond any run in this codebase; the remaining 192 counter bits are
// zero and reserved for future stream substructure.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace sfs::rng {

/// Philox4x64-10 counter-based engine with O(1) seek.
class Philox4x64 {
 public:
  using result_type = std::uint64_t;

  /// Draws produced per block encryption.
  static constexpr std::size_t kBlockSize = 4;
  /// Number of bump-key rounds (the standard, crush-resistant choice).
  static constexpr unsigned kRounds = 10;

  explicit Philox4x64(std::uint64_t key0 = 0, std::uint64_t key1 = 0) noexcept
      : key_{key0, key1} {
    seek(0);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Jumps to draw index `draw`: the next operator() call returns the same
  /// value as the (draw+1)-th call on a freshly constructed engine with the
  /// same key. O(1) — one block encryption.
  void seek(std::uint64_t draw) noexcept;

  /// Index of the next draw (the value `seek` would need to reproduce the
  /// current position).
  [[nodiscard]] std::uint64_t position() const noexcept {
    return block_ * kBlockSize + sub_;
  }

  /// Encrypts the 4-word block at block index `block` (i.e. draws
  /// [4*block, 4*block+4)) without touching the engine position. This is
  /// the stateless core used by StreamPlan v2 derivations.
  [[nodiscard]] std::array<std::uint64_t, 4> block_at(
      std::uint64_t block) const noexcept;

  result_type operator()() noexcept {
    if (sub_ == kBlockSize) {
      ++block_;
      buffer_ = block_at(block_);
      sub_ = 0;
    }
    return buffer_[sub_++];
  }

  [[nodiscard]] std::array<std::uint64_t, 2> key() const noexcept {
    return key_;
  }

 private:
  std::array<std::uint64_t, 2> key_;
  std::array<std::uint64_t, 4> buffer_{};
  std::uint64_t block_ = 0;  // block index of buffer_
  std::uint32_t sub_ = 0;    // next unread word of buffer_
};

}  // namespace sfs::rng
