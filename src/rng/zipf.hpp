// Power-law (Zipf-like) integer samplers.
//
// Used to draw degree sequences for the Molloy–Reed configuration model:
// P(D = d) ∝ d^{-k} for d in [d_min, d_max], the "pure random power-law
// graph" family that Adamic et al. (2001) and Sarshar et al. (2004) study.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/discrete.hpp"
#include "rng/random.hpp"

namespace sfs::rng {

/// Bounded discrete power law: P(D = d) ∝ d^{-exponent} for
/// d_min <= d <= d_max. Exact sampling via a precomputed alias table (the
/// support is at most d_max - d_min + 1 values, typically O(sqrt n)).
class BoundedZipf {
 public:
  /// Requires 1 <= d_min <= d_max and exponent > 0.
  BoundedZipf(std::uint32_t d_min, std::uint32_t d_max, double exponent);

  [[nodiscard]] std::uint32_t d_min() const noexcept { return d_min_; }
  [[nodiscard]] std::uint32_t d_max() const noexcept { return d_max_; }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

  /// Expected value of the distribution.
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Probability of the value d (0 outside the support).
  [[nodiscard]] double pmf(std::uint32_t d) const noexcept;

  [[nodiscard]] std::uint32_t sample(Rng& rng) const;

 private:
  std::uint32_t d_min_;
  std::uint32_t d_max_;
  double exponent_;
  double mean_ = 0.0;
  double total_weight_ = 0.0;
  AliasTable table_;
};

/// Natural degree cutoff n^{1/(k-1)} used for power-law graphs with
/// exponent k (keeps the configuration model close to simple).
[[nodiscard]] std::uint32_t natural_cutoff(std::size_t n, double exponent);

}  // namespace sfs::rng
