#include "sim/sweep.hpp"

#include <limits>

#include "base/check.hpp"
#include "rng/random.hpp"

namespace sfs::sim {

using graph::VertexId;

namespace {

template <typename Portfolio, typename RunOne>
PortfolioCost measure_portfolio(const GraphFactory& factory,
                                const EndpointSelector& endpoints,
                                std::size_t reps, std::uint64_t seed,
                                const Portfolio& portfolio_factory,
                                const RunOne& run_one) {
  SFS_REQUIRE(reps >= 1, "need at least one replication");
  auto probe = portfolio_factory();
  PortfolioCost out;
  out.policies.resize(probe.size());
  std::vector<stats::Accumulator> req_acc(probe.size());
  std::vector<stats::Accumulator> raw_acc(probe.size());
  std::vector<std::size_t> found(probe.size(), 0);
  std::vector<std::vector<double>> req_raws(probe.size());

  for (std::size_t rep = 0; rep < reps; ++rep) {
    // One graph per replication, shared by all policies (paired design).
    rng::Rng graph_rng(rng::derive_seed(seed, rep));
    const graph::Graph g = factory(graph_rng);
    rng::Rng endpoint_rng(rng::derive_seed(seed ^ 0xabcdef, rep));
    const auto [start, target] = endpoints(g, endpoint_rng);

    auto portfolio = portfolio_factory();
    for (std::size_t i = 0; i < portfolio.size(); ++i) {
      rng::Rng search_rng(rng::derive_seed(seed ^ (0x5ea7c4 + i), rep));
      const search::SearchResult r =
          run_one(g, start, target, *portfolio[i], search_rng);
      req_acc[i].add(static_cast<double>(r.requests));
      raw_acc[i].add(static_cast<double>(r.raw_requests));
      req_raws[i].push_back(static_cast<double>(r.requests));
      if (r.found) ++found[i];
    }
  }

  auto portfolio = portfolio_factory();
  for (std::size_t i = 0; i < portfolio.size(); ++i) {
    out.policies[i].name = portfolio[i]->name();
    out.policies[i].requests = req_acc[i].summary();
    out.policies[i].raw_requests = raw_acc[i].summary();
    out.policies[i].found_fraction =
        static_cast<double>(found[i]) / static_cast<double>(reps);
  }

  // Best: lowest mean charged requests, preferring always-successful
  // policies over ones that missed the target in some replication.
  bool best_full = false;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < out.policies.size(); ++i) {
    const bool full = out.policies[i].found_fraction >= 1.0;
    const double mean = out.policies[i].requests.mean;
    if ((full && !best_full) || (full == best_full && mean < best_mean)) {
      out.best = i;
      best_full = full;
      best_mean = mean;
    }
  }
  return out;
}

}  // namespace

PortfolioCost measure_weak_portfolio(const GraphFactory& factory,
                                     const EndpointSelector& endpoints,
                                     std::size_t reps, std::uint64_t seed,
                                     const search::RunBudget& budget) {
  return measure_portfolio(
      factory, endpoints, reps, seed, &search::weak_portfolio,
      [&](const graph::Graph& g, VertexId s, VertexId t,
          search::WeakSearcher& policy, rng::Rng& rng) {
        return search::run_weak(g, s, t, policy, rng, budget);
      });
}

PortfolioCost measure_strong_portfolio(const GraphFactory& factory,
                                       const EndpointSelector& endpoints,
                                       std::size_t reps, std::uint64_t seed,
                                       const search::RunBudget& budget) {
  return measure_portfolio(
      factory, endpoints, reps, seed, &search::strong_portfolio,
      [&](const graph::Graph& g, VertexId s, VertexId t,
          search::StrongSearcher& policy, rng::Rng& rng) {
        return search::run_strong(g, s, t, policy, rng, budget);
      });
}

EndpointSelector oldest_to_newest() {
  return [](const graph::Graph& g, rng::Rng&) {
    SFS_REQUIRE(g.num_vertices() >= 2, "graph too small");
    return std::pair<VertexId, VertexId>{
        0, static_cast<VertexId>(g.num_vertices() - 1)};
  };
}

EndpointSelector random_to_newest() {
  return [](const graph::Graph& g, rng::Rng& rng) {
    SFS_REQUIRE(g.num_vertices() >= 2, "graph too small");
    const auto target = static_cast<VertexId>(g.num_vertices() - 1);
    VertexId start;
    do {
      start = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    } while (start == target);
    return std::pair<VertexId, VertexId>{start, target};
  };
}

EndpointSelector newest_to_paper_id(std::size_t paper_id) {
  return [paper_id](const graph::Graph& g, rng::Rng&) {
    SFS_REQUIRE(paper_id >= 1 && paper_id <= g.num_vertices(),
                "paper id out of range");
    return std::pair<VertexId, VertexId>{
        static_cast<VertexId>(g.num_vertices() - 1),
        static_cast<VertexId>(paper_id - 1)};
  };
}

}  // namespace sfs::sim
