#include "sim/sweep.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <type_traits>

#include "base/check.hpp"
#include "rng/random.hpp"
#include "rng/stream_audit.hpp"
#include "search/policy.hpp"
#include "sim/parallel.hpp"
#include "sim/worker_context.hpp"

namespace sfs::sim {

using graph::VertexId;

const PolicyCost& PortfolioCost::best_policy() const {
  SFS_REQUIRE(!policies.empty(),
              "best_policy() on an empty portfolio — this PortfolioCost "
              "holds no policies (a default-constructed result, or a "
              "measurement that never ran)");
  SFS_CHECK(best < policies.size(), "best index out of range");
  return policies[best];
}

namespace {

// Per-worker reusable state: the shared WorkerContext (search workspace,
// generator scratch, recycled graph slot — sim/worker_context.hpp) plus
// one portfolio instance (policies fully reset in start()).
template <typename Policies>
struct WorkerState {
  Policies policies;
  WorkerContext ctx;
  bool initialized = false;
};

// MakeGraph: (rng, WorkerState&) -> const Graph&, so plain and
// scratch-aware factories share the measurement loop.
template <typename Portfolio, typename RunOne, typename MakeGraph>
PortfolioCost measure_portfolio_impl(const MakeGraph& make_graph,
                                     const EndpointSelector& endpoints,
                                     std::size_t reps, std::uint64_t seed,
                                     rng::StreamPlanVersion stream_plan,
                                     const Portfolio& portfolio_factory,
                                     const RunOne& run_one,
                                     std::size_t threads) {
  SFS_REQUIRE(reps >= 1, "need at least one replication");
  auto probe = portfolio_factory();
  const std::size_t num_policies = probe.size();

  // Replication results land in slots indexed by (rep, policy); the fold
  // below walks them in replication order, so the summaries are
  // bit-identical to a sequential loop for any worker count.
  std::vector<std::vector<search::SearchResult>> results(reps);

  using State = WorkerState<decltype(portfolio_factory())>;
  std::vector<State> workers(resolve_worker_count(threads));

  parallel_for(reps, threads, [&](std::size_t rep, std::size_t worker) {
    State& st = workers[worker];
    if (!st.initialized) {
      st.policies = portfolio_factory();
      st.initialized = true;
    }
    // One graph per replication, shared by all policies (paired design).
    // Stream tags: 0 = graph — untempered, because stream 0 must stay
    // equal to derive_seed(seed, rep) (see rng/random.cpp); the endpoint
    // tag 0xabcdef and per-policy tags 0x5ea7c4+i are tempered through
    // mix64 like sim/scaling's size tags, because raw XOR tags alias
    // across experiments whose seeds differ by a small XOR delta — the
    // stream audit caught exactly that in-tree: seeds 17 and 29 (delta
    // 0x0c) shared policy streams 0x5ea7c4+4 and 0x5ea7c4+0.
    // Derivations go through the versioned, audited stream plan
    // (rng/stream_plan.hpp): under kLegacy each call is exactly the
    // historical audited_stream_seed mix chain, so v1 artifacts replay bit
    // for bit; under kCounter the same tags key O(1) Philox derivations.
    // Either way a sweep run under SFS_RNG_AUDIT=1 fails fast on stream
    // collisions (rng/stream_audit).
    rng::Rng graph_rng(rng::StreamPlan(seed, 0, stream_plan).stream_seed(rep));
    const graph::Graph& g = make_graph(graph_rng, st);
    rng::Rng endpoint_rng(
        rng::StreamPlan(seed, rng::mix64(0xabcdef), stream_plan)
            .stream_seed(rep));
    const auto [start, target] = endpoints(g, endpoint_rng);

    auto& row = results[rep];
    row.resize(num_policies);
    for (std::size_t i = 0; i < num_policies; ++i) {
      rng::Rng search_rng(
          rng::StreamPlan(seed, rng::mix64(0x5ea7c4 + i), stream_plan)
              .stream_seed(rep));
      row[i] = run_one(g, start, target, *st.policies[i], search_rng,
                       st.ctx.workspace);
    }
  });

  // Sequential fold in replication order.
  PortfolioCost out;
  out.policies.resize(num_policies);
  std::vector<stats::Accumulator> req_acc(num_policies);
  std::vector<stats::Accumulator> raw_acc(num_policies);
  std::vector<std::size_t> found(num_policies, 0);
  std::vector<std::size_t> failed_sum(num_policies, 0);
  std::vector<std::size_t> restart_sum(num_policies, 0);
  std::vector<std::size_t> abandoned(num_policies, 0);
  std::vector<std::vector<double>> req_values(num_policies);
  for (auto& v : req_values) v.reserve(reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    for (std::size_t i = 0; i < num_policies; ++i) {
      const search::SearchResult& r = results[rep][i];
      req_acc[i].add(static_cast<double>(r.requests));
      raw_acc[i].add(static_cast<double>(r.raw_requests));
      req_values[i].push_back(static_cast<double>(r.requests));
      if (r.found) ++found[i];
      failed_sum[i] += r.failed_requests;
      restart_sum[i] += r.restarts;
      if (r.abandoned) ++abandoned[i];
    }
  }

  for (std::size_t i = 0; i < num_policies; ++i) {
    out.policies[i].name = probe[i]->name();
    out.policies[i].requests = req_acc[i].summary();
    out.policies[i].raw_requests = raw_acc[i].summary();
    // Sort once per policy; median and p90 read from the same sorted
    // sample (stats::median / stats::quantile would each sort a copy).
    std::sort(req_values[i].begin(), req_values[i].end());
    out.policies[i].median_requests = stats::quantile_sorted(req_values[i], 0.5);
    out.policies[i].p90_requests = stats::quantile_sorted(req_values[i], 0.9);
    out.policies[i].found_fraction =
        static_cast<double>(found[i]) / static_cast<double>(reps);
    out.policies[i].mean_failed_requests =
        static_cast<double>(failed_sum[i]) / static_cast<double>(reps);
    out.policies[i].mean_restarts =
        static_cast<double>(restart_sum[i]) / static_cast<double>(reps);
    out.policies[i].abandoned_fraction =
        static_cast<double>(abandoned[i]) / static_cast<double>(reps);
  }

  // Best: lowest mean charged requests, preferring always-successful
  // policies over ones that missed the target in some replication; an
  // exactly equal mean keeps the earlier (lower-index) policy — see
  // PortfolioCost::best.
  bool best_full = false;
  double best_mean = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < out.policies.size(); ++i) {
    const bool full = out.policies[i].found_fraction >= 1.0;
    const double mean = out.policies[i].requests.mean;
    if ((full && !best_full) || (full == best_full && mean < best_mean)) {
      out.best = i;
      best_full = full;
      best_mean = mean;
    }
  }
  return out;
}

// Adapts either factory flavor to the MakeGraph contract. The plain
// factory's graph is parked in the worker context too, so both paths hand
// the measurement loop a stable reference.
template <typename State>
const graph::Graph& remake_graph(const GraphFactory& factory, rng::Rng& rng,
                                 State& st) {
  st.ctx.graph = factory(rng);
  return st.ctx.graph;
}

template <typename State>
const graph::Graph& remake_graph(const ScratchGraphFactory& factory,
                                 rng::Rng& rng, State& st) {
  factory(rng, st.ctx.gen_scratch, st.ctx.graph);
  return st.ctx.graph;
}

using PolicySpecs = std::span<const search::PolicySpec* const>;

template <typename Factory>
PortfolioCost measure_weak_plan(PolicySpecs specs, const Factory& factory,
                                const EndpointSelector& endpoints,
                                std::size_t reps, std::uint64_t seed,
                                rng::StreamPlanVersion stream_plan,
                                const search::RunBudget& budget,
                                std::size_t threads) {
  return measure_portfolio_impl(
      [&](rng::Rng& rng, auto& st) -> const graph::Graph& {
        return remake_graph(factory, rng, st);
      },
      endpoints, reps, seed, stream_plan,
      [specs] { return search::make_weak_searchers(specs); },
      [&](const graph::Graph& g, VertexId s, VertexId t,
          search::WeakSearcher& policy, rng::Rng& rng,
          search::SearchWorkspace& ws) {
        return search::run_weak(g, s, t, policy, rng, budget, ws);
      },
      threads);
}

template <typename Factory>
PortfolioCost measure_strong_plan(PolicySpecs specs, const Factory& factory,
                                  const EndpointSelector& endpoints,
                                  std::size_t reps, std::uint64_t seed,
                                  rng::StreamPlanVersion stream_plan,
                                  const search::RunBudget& budget,
                                  std::size_t threads) {
  return measure_portfolio_impl(
      [&](rng::Rng& rng, auto& st) -> const graph::Graph& {
        return remake_graph(factory, rng, st);
      },
      endpoints, reps, seed, stream_plan,
      [specs] { return search::make_strong_searchers(specs); },
      [&](const graph::Graph& g, VertexId s, VertexId t,
          search::StrongSearcher& policy, rng::Rng& rng,
          search::SearchWorkspace& ws) {
        return search::run_strong(g, s, t, policy, rng, budget, ws);
      },
      threads);
}

}  // namespace

PortfolioCost measure_portfolio(const RunPlan& plan) {
  SFS_REQUIRE(static_cast<bool>(plan.endpoints),
              "RunPlan: an endpoint selector is required");
  const bool plain = static_cast<bool>(plan.factory);
  const bool scratch = static_cast<bool>(plan.scratch_factory);
  SFS_REQUIRE(plain != scratch,
              "RunPlan: set exactly one of factory / scratch_factory");
  // Throws std::invalid_argument on unknown names, wrong-model policies,
  // duplicates, or a selection that matches nothing — an empty portfolio
  // is a checked error, never a silent empty result.
  const auto specs = search::resolve_policies(plan.model, plan.policies);
  if (plan.model == search::KnowledgeModel::kWeak) {
    if (plain) {
      return measure_weak_plan(specs, plan.factory, plan.endpoints, plan.reps,
                               plan.seed, plan.stream_plan, plan.budget,
                               plan.threads);
    }
    return measure_weak_plan(specs, plan.scratch_factory, plan.endpoints,
                             plan.reps, plan.seed, plan.stream_plan,
                             plan.budget, plan.threads);
  }
  if (plain) {
    return measure_strong_plan(specs, plan.factory, plan.endpoints, plan.reps,
                               plan.seed, plan.stream_plan, plan.budget,
                               plan.threads);
  }
  return measure_strong_plan(specs, plan.scratch_factory, plan.endpoints,
                             plan.reps, plan.seed, plan.stream_plan,
                             plan.budget, plan.threads);
}

namespace {

template <typename Factory>
RunPlan compat_plan(search::KnowledgeModel model, const Factory& factory,
                    const EndpointSelector& endpoints, std::size_t reps,
                    std::uint64_t seed, const search::RunBudget& budget,
                    std::size_t threads) {
  RunPlan plan;
  plan.model = model;
  if constexpr (std::is_same_v<Factory, GraphFactory>) {
    plan.factory = factory;
  } else {
    plan.scratch_factory = factory;
  }
  plan.endpoints = endpoints;
  plan.reps = reps;
  plan.seed = seed;
  plan.budget = budget;
  plan.threads = threads;
  return plan;
}

}  // namespace

PortfolioCost measure_weak_portfolio(const GraphFactory& factory,
                                     const EndpointSelector& endpoints,
                                     std::size_t reps, std::uint64_t seed,
                                     const search::RunBudget& budget,
                                     std::size_t threads) {
  return measure_portfolio(compat_plan(search::KnowledgeModel::kWeak, factory,
                                       endpoints, reps, seed, budget,
                                       threads));
}

PortfolioCost measure_weak_portfolio(const ScratchGraphFactory& factory,
                                     const EndpointSelector& endpoints,
                                     std::size_t reps, std::uint64_t seed,
                                     const search::RunBudget& budget,
                                     std::size_t threads) {
  return measure_portfolio(compat_plan(search::KnowledgeModel::kWeak, factory,
                                       endpoints, reps, seed, budget,
                                       threads));
}

PortfolioCost measure_strong_portfolio(const GraphFactory& factory,
                                       const EndpointSelector& endpoints,
                                       std::size_t reps, std::uint64_t seed,
                                       const search::RunBudget& budget,
                                       std::size_t threads) {
  return measure_portfolio(compat_plan(search::KnowledgeModel::kStrong,
                                       factory, endpoints, reps, seed, budget,
                                       threads));
}

PortfolioCost measure_strong_portfolio(const ScratchGraphFactory& factory,
                                       const EndpointSelector& endpoints,
                                       std::size_t reps, std::uint64_t seed,
                                       const search::RunBudget& budget,
                                       std::size_t threads) {
  return measure_portfolio(compat_plan(search::KnowledgeModel::kStrong,
                                       factory, endpoints, reps, seed, budget,
                                       threads));
}

EndpointSelector oldest_to_newest() {
  return [](const graph::Graph& g, rng::Rng&) {
    SFS_REQUIRE(g.num_vertices() >= 2, "graph too small");
    return std::pair<VertexId, VertexId>{
        0, static_cast<VertexId>(g.num_vertices() - 1)};
  };
}

EndpointSelector random_to_newest() {
  return [](const graph::Graph& g, rng::Rng& rng) {
    SFS_REQUIRE(g.num_vertices() >= 2, "graph too small");
    const auto target = static_cast<VertexId>(g.num_vertices() - 1);
    VertexId start;
    do {
      start = static_cast<VertexId>(rng.uniform_index(g.num_vertices()));
    } while (start == target);
    return std::pair<VertexId, VertexId>{start, target};
  };
}

EndpointSelector newest_to_paper_id(std::size_t paper_id) {
  return [paper_id](const graph::Graph& g, rng::Rng&) {
    SFS_REQUIRE(paper_id >= 1 && paper_id <= g.num_vertices(),
                "paper id out of range");
    return std::pair<VertexId, VertexId>{
        static_cast<VertexId>(g.num_vertices() - 1),
        static_cast<VertexId>(paper_id - 1)};
  };
}

}  // namespace sfs::sim
