#include "sim/csv.hpp"

#include <ostream>

namespace sfs::sim {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

bool parse_csv_row(const std::string& line, std::vector<std::string>& fields) {
  fields.clear();
  std::string field;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (true) {
    field.clear();
    if (i < n && line[i] == '"') {
      // Quoted field: runs to the matching close quote; "" is a literal ".
      ++i;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {
            field += '"';
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          field += line[i++];
        }
      }
      if (!closed) return false;
      if (i < n && line[i] != ',') return false;
    } else {
      while (i < n && line[i] != ',') {
        if (line[i] == '"') return false;  // bare quote mid-field
        field += line[i++];
      }
    }
    fields.push_back(field);
    if (i >= n) return true;
    ++i;  // skip the comma; a trailing comma yields a final empty field
  }
}

}  // namespace sfs::sim
