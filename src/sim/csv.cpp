#include "sim/csv.hpp"

#include <ostream>

namespace sfs::sim {

std::string csv_escape(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void write_csv_row(std::ostream& out, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out << ',';
    out << csv_escape(fields[i]);
  }
  out << '\n';
}

}  // namespace sfs::sim
