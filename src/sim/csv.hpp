// Minimal RFC-4180 CSV emission and parsing: emission for piping
// experiment output into plotting tools, parsing for reading back the
// checkpoint files the scaling harness streams (sim/scaling.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sfs::sim {

/// Quotes a field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes one CSV row (fields joined by commas, terminated by '\n').
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

/// Parses one CSV line (no trailing newline) back into fields, undoing
/// csv_escape: quoted fields may contain commas and doubled quotes.
/// Returns false (leaving `fields` in an unspecified state) when the line
/// is malformed — an unterminated quoted field or garbage after a closing
/// quote — which is how the checkpoint reader detects a record that was
/// cut off mid-write.
[[nodiscard]] bool parse_csv_row(const std::string& line,
                                 std::vector<std::string>& fields);

}  // namespace sfs::sim
