// Minimal RFC-4180 CSV emission, for piping experiment output into plotting
// tools.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sfs::sim {

/// Quotes a field if it contains a comma, quote or newline.
[[nodiscard]] std::string csv_escape(const std::string& field);

/// Writes one CSV row (fields joined by commas, terminated by '\n').
void write_csv_row(std::ostream& out, const std::vector<std::string>& fields);

}  // namespace sfs::sim
