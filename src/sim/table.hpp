// Aligned plain-text tables: the output format of every benchmark binary.
// Each bench prints the same rows the corresponding EXPERIMENTS.md section
// records, so results regenerate by re-running the binary.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sfs::sim {

/// A simple column-aligned table with a title and typed cell helpers.
class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  /// Starts a new row; fill it with cell()/num() calls.
  Table& row();

  /// Appends a string cell to the current row.
  Table& cell(std::string value);

  /// Appends a number formatted with `precision` significant decimals.
  Table& num(double value, int precision = 3);

  /// Appends an integer cell.
  Table& integer(std::uint64_t value);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& title() const noexcept { return title_; }

  /// Renders with column alignment, a title line and a rule.
  void print(std::ostream& out) const;

  /// Renders as CSV (headers + rows, RFC-4180 quoting).
  void write_csv(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (shared by Table and ad-hoc
/// prints).
[[nodiscard]] std::string format_double(double value, int precision = 3);

}  // namespace sfs::sim
