// Compatibility shim: the deterministic replication executor moved to
// base/parallel.hpp so that layers below sim/ (search::QueryEngine's
// batch fan-out) can use it without violating the include-layering DAG
// base→rng→graph→gen→stats→search→sim→core (sfs_lint R8,
// docs/ANALYSIS.md). The sim:: spellings remain first-class — the
// replication harnesses and their tests keep using sim::parallel_for /
// sim::ThreadPool — they are the same entities.
#pragma once

#include "base/parallel.hpp"

namespace sfs::sim {

using base::default_worker_count;
using base::parallel_for;
using base::resolve_worker_count;
using base::shared_pool;
using base::ThreadPool;

}  // namespace sfs::sim
