#include "sim/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/check.hpp"
#include "sim/csv.hpp"

namespace sfs::sim {

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {
  SFS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::row() {
  SFS_CHECK(rows_.empty() || rows_.back().size() == headers_.size(),
            "previous row is incomplete");
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(std::string value) {
  SFS_REQUIRE(!rows_.empty(), "call row() before adding cells");
  SFS_REQUIRE(rows_.back().size() < headers_.size(), "row overflow");
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::num(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::integer(std::uint64_t value) {
  return cell(std::to_string(value));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  }

  out << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string{};
      out << std::left << std::setw(static_cast<int>(width[c]) + 2) << v;
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : width) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  out.flush();
}

void Table::write_csv(std::ostream& out) const {
  write_csv_row(out, headers_);
  for (const auto& row : rows_) write_csv_row(out, row);
}

}  // namespace sfs::sim
