// Deterministic churn schedules over a graph::Overlay.
//
// A ChurnSchedule turns a rate specification into a reproducible stream of
// overlay mutations, split into the two phases a live system interleaves
// with lookup traffic:
//
//   inject(step) — each live peer departs with probability `rate`
//     (tombstoned, edges left dangling), each live link between live
//     peers fails with probability `edge_failure_rate`. The overlay is
//     left broken on purpose: query batches run here race stale routing
//     state, which is what the departure-tolerant search layer absorbs.
//   repair(step) — each departure is (optionally) replaced by a fresh
//     join with `join_edges` preferential-attachment links, then the
//     overlay may compact (Overlay::maybe_compact).
//
// apply_step = inject + repair. With replacement on, the live population
// is stationary in expectation — the "steady-state churn" regime the
// d1_churn experiment family measures.
//
// Determinism is the whole point. Step `t` draws from Rngs seeded with
// rng::audited_stream_seed(seed, tag, t) (one tag per phase): every step
// is a pure function of (schedule seed, step index) and independent of
// thread count or of how many searches ran in between, so the RNG stream
// audit and the seq == parallel bit-identity discipline carry over
// unchanged. Within a phase, events are applied in a fixed order
// (departures in vertex-id order, edge failures in edge-id order), so an
// identical (overlay, seed, step) triple always yields an identical
// mutated overlay.
//
// A zero schedule (rate == 0 and edge_failure_rate == 0) is an exact
// no-op: apply_step returns without touching the overlay or drawing any
// randomness, so the overlay epoch is unchanged and downstream search is
// bit-identical to the static-graph pipeline — the churn-rate-0 acceptance
// check in bench/experiments/d1_churn.cpp relies on this.
//
// Threading: apply_step mutates the overlay and must not race overlay
// readers; drive it from the orchestrating thread between search batches
// (the QueryEngine epoch contract).
#pragma once

#include <cstdint>

#include "graph/overlay.hpp"

namespace sfs::sim {

/// Rate specification for one churn process. Rates are per-step
/// probabilities, not continuous-time intensities.
struct ChurnParams {
  /// Per-step departure probability of each live peer.
  double rate = 0.0;
  /// Replace each departure with a fresh join (stationary population)?
  bool replace = true;
  /// Per-step failure probability of each live snapshot edge.
  double edge_failure_rate = 0.0;
  /// Preferential-attachment links per replacement join.
  std::size_t join_edges = 2;
  /// Dead-edge debt fraction that triggers compaction
  /// (Overlay::maybe_compact).
  double compact_threshold = 0.25;
};

/// What one apply_step did, for experiment reporting.
struct ChurnStepStats {
  std::size_t departures = 0;
  std::size_t joins = 0;
  std::size_t edge_failures = 0;
  bool compacted = false;
};

/// Stream tags of the churn event streams (rng::audited_stream_seed's
/// `stream` argument); the step index is the `rep` argument. Injection
/// (departures + edge failures) and repair (replacement joins) draw from
/// separate streams so the two phases of one step stay uncorrelated.
/// Exposed so experiments can keep their other substreams disjoint.
[[nodiscard]] std::uint64_t churn_stream_tag() noexcept;
[[nodiscard]] std::uint64_t churn_repair_stream_tag() noexcept;

/// A seeded churn process. Stateless between steps apart from the params
/// and seed: step t's events depend only on (seed, t) and the overlay
/// state it is applied to.
class ChurnSchedule {
 public:
  /// Validates params: rates must be finite in [0, 1], join_edges >= 1
  /// when replacement is on, compact_threshold >= 0.
  ChurnSchedule(const ChurnParams& params, std::uint64_t seed);

  [[nodiscard]] const ChurnParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// True iff the schedule can never mutate anything (both rates zero).
  [[nodiscard]] bool is_null() const noexcept;

  /// Fault-injection half of step `step`: departures (vertex-id order,
  /// never reducing the live population below 2 peers) and edge failures
  /// (edge-id order). No joins, no compaction — the overlay is left with
  /// its tombstones and dead links showing, which is the state lookup
  /// traffic races in a real system (run query batches here, before
  /// repair, to exercise the departure-tolerant search path). A null
  /// schedule returns all-zero stats without touching the overlay.
  ChurnStepStats inject(graph::Overlay& overlay, std::uint64_t step) const;

  /// Repair half of step `step`: one replacement join per departure in
  /// `stats` (when params().replace), then Overlay::maybe_compact. Updates
  /// stats.joins / stats.compacted in place. Draws from the repair stream,
  /// so injection and repair of one step are independent.
  void repair(graph::Overlay& overlay, std::uint64_t step,
              ChurnStepStats& stats) const;

  /// inject + repair back to back: the whole step with no window in which
  /// tombstones are observable. A null schedule returns immediately with
  /// all-zero stats and does not bump the overlay epoch.
  ChurnStepStats apply_step(graph::Overlay& overlay, std::uint64_t step) const;

 private:
  ChurnParams params_;
  std::uint64_t seed_ = 0;
};

}  // namespace sfs::sim
