#include "sim/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace sfs::sim {

namespace {

/// True while the current thread is executing a pool task; nested
/// parallel_for calls detect this and run inline.
thread_local bool t_inside_pool_task = false;

}  // namespace

std::size_t default_worker_count() {
  if (const char* env = std::getenv("SFS_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Out-of-range values (strtol clamps to LONG_MAX/LONG_MIN with ERANGE)
    // fall back to hardware concurrency like any other garbage.
    if (end != env && *end == '\0' && errno == 0 && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ThreadPool::Impl {
  std::size_t workers = 1;          // total, including the calling thread
  std::vector<std::thread> threads;  // workers - 1 background threads

  std::mutex mu;
  std::condition_variable job_cv;   // background workers wait for a job
  std::condition_variable done_cv;  // the caller waits for quiescence
  std::uint64_t generation = 0;
  bool stop = false;

  // Current job (written by the caller under mu before bumping generation;
  // read-only for workers until the job completes).
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::size_t active = 0;  // background workers still inside the job
  std::exception_ptr error;

  std::mutex call_mu;  // serializes concurrent external parallel_for calls

  /// Claims tasks off the shared counter until the job is drained.
  void run_tasks(std::size_t worker) {
    const bool was_inside = t_inside_pool_task;
    t_inside_pool_task = true;
    for (;;) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= count) break;
      if (cancelled.load(std::memory_order_relaxed)) continue;  // drain
      try {
        (*fn)(task, worker);
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    t_inside_pool_task = was_inside;
  }

  void worker_loop(std::size_t worker) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        job_cv.wait(lk, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
      }
      run_tasks(worker);
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }

  /// Stops and joins the background threads. Safe with any subset of the
  /// requested threads actually spawned (partial construction).
  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    job_cv.notify_all();
    for (auto& t : threads) t.join();
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->workers = workers == 0 ? default_worker_count() : workers;
  try {
    impl_->threads.reserve(impl_->workers - 1);
    for (std::size_t w = 1; w < impl_->workers; ++w) {
      impl_->threads.emplace_back([this, w] { impl_->worker_loop(w); });
    }
  } catch (...) {
    // A std::thread failed to spawn (resource limit): the destructor will
    // not run for a half-constructed object, so stop and join the workers
    // that did start before letting the exception propagate.
    impl_->shutdown();
    delete impl_;
    // SFS_LINT_ALLOW(check-discipline): bare rethrow after cleanup must re-propagate the original exception, which no SFS_* macro can do
    throw;
  }
}

ThreadPool::~ThreadPool() {
  impl_->shutdown();
  delete impl_;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // Nested fan-out (a pool task that itself replicates) runs inline on the
  // current thread: its sub-tasks all see worker index 0 of the nested
  // call, which is safe because the nested call's scratch state is local
  // to this thread's call frame.
  if (t_inside_pool_task || impl_->workers == 1) {
    for (std::size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }

  std::lock_guard<std::mutex> call_lock(impl_->call_mu);
  {
    std::lock_guard<std::mutex> lk(impl_->mu);
    impl_->fn = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->cancelled.store(false, std::memory_order_relaxed);
    impl_->active = impl_->threads.size();
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->job_cv.notify_all();

  impl_->run_tasks(0);  // the caller is worker 0

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(impl_->mu);
    impl_->done_cv.wait(lk, [&] { return impl_->active == 0; });
    err = impl_->error;
    impl_->error = nullptr;
    impl_->fn = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  // Nested calls run inline anyway — don't spawn a pool whose threads
  // would never execute a task.
  if (threads == 1 || t_inside_pool_task) {
    for (std::size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  if (threads == 0) {
    shared_pool().parallel_for(count, fn);
    return;
  }
  ThreadPool pool(threads);
  pool.parallel_for(count, fn);
}

std::size_t resolve_worker_count(std::size_t threads) {
  return threads == 0 ? shared_pool().worker_count() : threads;
}

}  // namespace sfs::sim
