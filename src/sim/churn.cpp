#include "sim/churn.hpp"

#include <cmath>

#include "base/check.hpp"
#include "rng/random.hpp"
#include "rng/stream_audit.hpp"

namespace sfs::sim {

std::uint64_t churn_stream_tag() noexcept {
  // "churn" — tempered like every other stream tag so nearby raw tags
  // cannot collide in derive_stream_seed's mixing.
  return rng::mix64(0xc4a91ULL);
}

std::uint64_t churn_repair_stream_tag() noexcept {
  return rng::mix64(0x6a01dULL);  // "joined"
}

ChurnSchedule::ChurnSchedule(const ChurnParams& params, std::uint64_t seed)
    : params_(params), seed_(seed) {
  SFS_REQUIRE(std::isfinite(params.rate) && params.rate >= 0.0 &&
                  params.rate <= 1.0,
              "ChurnSchedule: rate must be in [0, 1]");
  SFS_REQUIRE(std::isfinite(params.edge_failure_rate) &&
                  params.edge_failure_rate >= 0.0 &&
                  params.edge_failure_rate <= 1.0,
              "ChurnSchedule: edge_failure_rate must be in [0, 1]");
  SFS_REQUIRE(!params.replace || params.join_edges >= 1,
              "ChurnSchedule: replacement joins need join_edges >= 1");
  SFS_REQUIRE(std::isfinite(params.compact_threshold) &&
                  params.compact_threshold >= 0.0,
              "ChurnSchedule: compact_threshold must be non-negative");
}

bool ChurnSchedule::is_null() const noexcept {
  return params_.rate == 0.0 && params_.edge_failure_rate == 0.0;
}

ChurnStepStats ChurnSchedule::inject(graph::Overlay& overlay,
                                     std::uint64_t step) const {
  ChurnStepStats stats;
  // Exact no-op contract: a zero schedule draws nothing and leaves the
  // overlay epoch untouched (churn-rate-0 == static-graph bit-identity).
  if (is_null()) return stats;

  rng::Rng step_rng(
      rng::audited_stream_seed(seed_, churn_stream_tag(), step));

  // 1. Departures, in vertex-id order. The population floor of 2 keeps a
  // join target and at least one possible search source/target pair
  // around; vertices whose departure the floor vetoes consume no draw
  // (their turn simply never happens, same as a dead vertex's).
  if (params_.rate > 0.0) {
    const std::size_t n = overlay.num_vertices();
    for (std::size_t vi = 0; vi < n; ++vi) {
      if (overlay.num_alive() <= 2) break;
      const auto v = static_cast<graph::VertexId>(vi);
      if (!overlay.alive(v)) continue;
      if (step_rng.bernoulli(params_.rate)) {
        overlay.depart(v);
        ++stats.departures;
      }
    }
  }

  // 2. Targeted edge failures, in edge-id order, restricted to links
  // between two live peers (an edge stranded by a departure is already
  // unusable and already counted in the compaction debt).
  if (params_.edge_failure_rate > 0.0) {
    const graph::Graph& g = overlay.snapshot();
    const std::size_t m = g.num_edges();
    for (std::size_t ei = 0; ei < m; ++ei) {
      const auto e = static_cast<graph::EdgeId>(ei);
      if (!overlay.edge_alive(e)) continue;
      const graph::Edge& ed = g.edge(e);
      if (!overlay.alive(ed.tail) || !overlay.alive(ed.head)) continue;
      if (step_rng.bernoulli(params_.edge_failure_rate)) {
        overlay.fail_edge(e);
        ++stats.edge_failures;
      }
    }
  }
  return stats;
}

void ChurnSchedule::repair(graph::Overlay& overlay, std::uint64_t step,
                           ChurnStepStats& stats) const {
  if (is_null()) return;

  // Replacement joins: one fresh peer per departure, keeping the live
  // population stationary. Separate stream from inject(), so the repair
  // randomness of a step does not depend on how many probes the injection
  // phase spent.
  if (params_.replace && stats.departures > 0) {
    rng::Rng repair_rng(
        rng::audited_stream_seed(seed_, churn_repair_stream_tag(), step));
    for (std::size_t i = 0; i < stats.departures; ++i) {
      (void)overlay.join(params_.join_edges, repair_rng);
      ++stats.joins;
    }
  }

  // Periodic compaction (always needed when joins staged; otherwise only
  // once the dead-edge debt crosses the threshold).
  stats.compacted = overlay.maybe_compact(params_.compact_threshold);
}

ChurnStepStats ChurnSchedule::apply_step(graph::Overlay& overlay,
                                         std::uint64_t step) const {
  ChurnStepStats stats = inject(overlay, step);
  repair(overlay, step, stats);
  return stats;
}

}  // namespace sfs::sim
