#include "sim/json.hpp"

#include <cmath>
#include <cstdio>

#include "sim/table.hpp"

namespace sfs::sim {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  char buf[8];
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (u < 0x20) {
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

/// Parses 4 hex digits at s[i..i+3]; returns false on truncation/non-hex.
bool parse_hex4(const std::string& s, std::size_t i, unsigned& value) {
  if (i + 4 > s.size()) return false;
  value = 0;
  for (std::size_t k = 0; k < 4; ++k) {
    const char c = s[i + k];
    unsigned digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  return true;
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

}  // namespace

bool json_unescape(const std::string& s, std::string& out) {
  out.clear();
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out.push_back(s[i]);
      continue;
    }
    if (++i >= s.size()) return false;
    switch (s[i]) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        unsigned cp;
        if (!parse_hex4(s, i + 1, cp)) return false;
        i += 4;
        if (cp >= 0xDC00 && cp <= 0xDFFF) return false;  // lone low surrogate
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: must be followed by \uDC00-\uDFFF.
          if (i + 2 >= s.size() || s[i + 1] != '\\' || s[i + 2] != 'u') {
            return false;
          }
          unsigned lo;
          if (!parse_hex4(s, i + 3, lo)) return false;
          if (lo < 0xDC00 || lo > 0xDFFF) return false;
          i += 6;
          append_utf8(out, 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00));
        } else {
          append_utf8(out, cp);
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "null";
  return format_double(v, 6);
}

JsonObjectWriter& JsonObjectWriter::key(const std::string& k) {
  if (!body_.empty()) body_.push_back(',');
  body_.push_back('"');
  body_ += json_escape(k);
  body_ += "\":";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::str_field(const std::string& k,
                                              const std::string& value) {
  key(k);
  body_.push_back('"');
  body_ += json_escape(value);
  body_.push_back('"');
  return *this;
}

JsonObjectWriter& JsonObjectWriter::num_field(const std::string& k,
                                              double value) {
  key(k).body_ += json_num(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::int_field(const std::string& k,
                                              std::uint64_t value) {
  key(k).body_ += std::to_string(value);
  return *this;
}

JsonObjectWriter& JsonObjectWriter::bool_field(const std::string& k,
                                               bool value) {
  key(k).body_ += value ? "true" : "false";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::null_field(const std::string& k) {
  key(k).body_ += "null";
  return *this;
}

JsonObjectWriter& JsonObjectWriter::raw_field(const std::string& k,
                                              const std::string& raw) {
  key(k).body_ += raw;
  return *this;
}

}  // namespace sfs::sim
