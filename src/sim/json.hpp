// Minimal JSON emission (and just enough parsing to round-trip it): the
// serialization layer behind every machine-readable result line the
// experiment driver emits (BENCH_JSON lines on the console, bare JSONL in
// --json files) and the sfsearch_cli --json reports.
//
// Promoted out of the header-only bench/bench_util.hpp so the code on the
// perf-trajectory critical path is compiled once, reused by the library,
// and unit-tested (tests/test_json.cpp round-trips every escape class).
#pragma once

#include <cstdint>
#include <string>

namespace sfs::sim {

/// Escapes a string for use inside a JSON string literal: quote and
/// backslash are backslash-escaped, control characters below 0x20 become
/// \u00XX, everything else (including multi-byte UTF-8) passes through.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Inverse of json_escape, accepting the full JSON escape repertoire
/// (\" \\ \/ \b \f \n \r \t and \uXXXX including surrogate pairs, decoded
/// to UTF-8). Returns false when `s` is not a valid escaped string body
/// (truncated escape, bad hex digit, unpaired surrogate); `out` is
/// unspecified in that case.
[[nodiscard]] bool json_unescape(const std::string& s, std::string& out);

/// Formats a finite double with 6 fixed decimals (the BENCH_JSON number
/// format); non-finite values serialize as "null" since JSON has no
/// Inf/NaN.
[[nodiscard]] std::string json_num(double v);

/// Builds a single-line JSON object field by field. Field order is
/// insertion order; keys are escaped, values are typed by the method used.
/// The result of str() is one object like {"bench":"e1","n":4096}.
class JsonObjectWriter {
 public:
  /// Appends "key":"<escaped value>".
  JsonObjectWriter& str_field(const std::string& key,
                              const std::string& value);
  /// Appends "key":<json_num(value)> (null for non-finite).
  JsonObjectWriter& num_field(const std::string& key, double value);
  /// Appends "key":<value> as a bare integer.
  JsonObjectWriter& int_field(const std::string& key, std::uint64_t value);
  /// Appends "key":true|false.
  JsonObjectWriter& bool_field(const std::string& key, bool value);
  /// Appends "key":null.
  JsonObjectWriter& null_field(const std::string& key);
  /// Appends "key":<raw> verbatim — `raw` must itself be valid JSON.
  JsonObjectWriter& raw_field(const std::string& key, const std::string& raw);

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  JsonObjectWriter& key(const std::string& k);
  std::string body_;
};

}  // namespace sfs::sim
