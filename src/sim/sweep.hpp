// Portfolio search-cost measurement: run a selected set of registered
// search policies on freshly generated graphs and summarize the
// charged-request cost per policy. The minimum over the portfolio is the
// empirical stand-in for "any algorithm" in the lower-bound experiments.
//
// V2 API: one RunPlan describes the whole measurement — knowledge model,
// policy filter (names resolved against the policy registry,
// search/policy.hpp), graph factory variant, endpoint selector,
// replications, seed, budget and thread fan-out — and one
// measure_portfolio(plan) runs it. The four v1 entry points
// (measure_weak_portfolio / measure_strong_portfolio × plain/scratch
// factory) survive as thin compat wrappers that build a plan; they are
// bit-identical to the pre-redesign implementation (same seed derivation,
// same fold order — pinned-seed golden test in tests/test_sweep_compat).
//
// Replications can be fanned out over the deterministic parallel executor
// (sim/parallel.hpp). Because every replication derives its own seeds from
// (seed, rep) and results are folded in replication order, the summaries
// are bit-identical for any thread count, including 1. Parallelism is
// opt-in (`threads` defaults to 1): passing 0 or >1 requires the caller's
// factory and endpoint selector to be safe to call concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/stream_plan.hpp"
#include "search/runner.hpp"
#include "stats/summary.hpp"

namespace sfs::sim {

/// Builds one experiment graph from a replication RNG.
using GraphFactory = std::function<graph::Graph(rng::Rng& rng)>;

/// Scratch-aware factory: regenerates `out` in place from the replication
/// RNG, recycling the worker's generator scratch and the Graph's own CSR
/// buffers (use the scratch-taking generator overloads in gen/). The
/// harness owns one WorkerContext (sim/worker_context.hpp) per worker, so
/// a portfolio sweep allocates nothing per replication in steady state.
using ScratchGraphFactory = std::function<void(
    rng::Rng& rng, gen::GenScratch& scratch, graph::Graph& out)>;

/// Picks start/target on a freshly built graph (e.g. "vertex 0" and "last
/// vertex"). Called per replication.
using EndpointSelector =
    std::function<std::pair<graph::VertexId, graph::VertexId>(
        const graph::Graph& g, rng::Rng& rng)>;

/// Per-policy cost summary over the replications.
struct PolicyCost {
  std::string name;
  stats::Summary requests;       // charged requests
  stats::Summary raw_requests;   // incl. repeats (walks)
  double median_requests = 0.0;  // median charged requests over reps
  double p90_requests = 0.0;     // 90th percentile charged requests
  double found_fraction = 0.0;   // replications that reached the target
  // Churn columns (identically zero for static-graph measurements): probe
  // failures against a liveness mask, policy restarts consumed from the
  // RetryBudget, and the fraction of replications abandoned when that
  // budget ran dry (see search/runner.hpp).
  double mean_failed_requests = 0.0;
  double mean_restarts = 0.0;
  double abandoned_fraction = 0.0;
};

struct PortfolioCost {
  std::vector<PolicyCost> policies;
  /// Index into policies of the best policy. Selection rule: policies
  /// that found the target in every replication beat policies that
  /// missed it at least once; within the same success class, the lowest
  /// mean charged requests wins. Tie-break: on an exactly equal mean
  /// (and equal success class), the policy earliest in portfolio order —
  /// i.e. the lowest index, which for a full portfolio is registration
  /// order — is kept.
  std::size_t best = 0;

  /// The entry at `best`. Throws std::invalid_argument on an empty
  /// portfolio (a default-constructed PortfolioCost) instead of the v1
  /// behavior of surfacing a bare std::out_of_range from vector::at.
  [[nodiscard]] const PolicyCost& best_policy() const;
};

/// The v2 portfolio measurement: everything one measurement needs, in one
/// value. Defaults reproduce the v1 entry points (full portfolio of the
/// model, sequential, default budget).
struct RunPlan {
  /// Knowledge model to run; every selected policy must be of this model.
  search::KnowledgeModel model = search::KnowledgeModel::kWeak;

  /// Policy filter, resolved against the policy registry
  /// (search/resolve_policies): empty = the model's full portfolio in
  /// registration order; otherwise the named policies in the given order.
  /// Unknown names, wrong-model policies and duplicates are checked
  /// errors. NOTE: each policy's RNG stream is tagged by its index in
  /// this selected portfolio, so a filtered run is paired (same graphs,
  /// same endpoints) with the full-portfolio run, and a policy keeps its
  /// exact v1 stream only while its index matches the full-portfolio
  /// position (prefix selections do; reorderings do not).
  std::vector<std::string> policies;

  /// Exactly one of `factory` / `scratch_factory` must be set.
  GraphFactory factory;
  ScratchGraphFactory scratch_factory;

  EndpointSelector endpoints;

  std::size_t reps = 1;
  std::uint64_t seed = 0;
  search::RunBudget budget;

  /// Replication fan-out: 1 (default) = sequential, 0 = the shared pool,
  /// n = a pool of n workers; the result is bit-identical in all cases.
  /// Any value other than 1 requires the factory and endpoint selector to
  /// be safe to call concurrently.
  std::size_t threads = 1;

  /// Stream-plan version of the per-replication streams
  /// (rng/stream_plan.hpp). Defaults to kLegacy — the frozen v1 mix chain
  /// — because every committed sweep artifact (e1/e2 pinned-seed goldens,
  /// checkpoint meta rows, test_sweep_compat) was produced under it and
  /// must replay bit for bit. Fresh experiments with no replay obligation
  /// should opt into kCounter (O(1) seekable Philox derivation).
  rng::StreamPlanVersion stream_plan = rng::StreamPlanVersion::kLegacy;
};

/// Runs `plan`: every selected policy on `plan.reps` fresh graphs. Every
/// policy sees the same sequence of graphs (same graph seeds) and the same
/// endpoints, so the comparison is paired. Preconditions (checked):
/// endpoints set, exactly one factory variant set, reps >= 1, and a
/// non-empty resolved portfolio.
[[nodiscard]] PortfolioCost measure_portfolio(const RunPlan& plan);

// ---------------------------------------------------------------------
// V1 compat wrappers. Each builds the equivalent RunPlan; outputs are
// bit-identical to the pre-redesign four-overload implementation. New
// code should build a RunPlan directly (see docs/SEARCH.md for the
// migration table).
// ---------------------------------------------------------------------

/// Full weak portfolio on `reps` fresh graphs (plain factory).
[[nodiscard]] PortfolioCost measure_weak_portfolio(
    const GraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Same for the strong portfolio.
[[nodiscard]] PortfolioCost measure_strong_portfolio(
    const GraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Scratch-aware variants: identical measurement (same seeds, same fold,
/// bit-identical PortfolioCost when the factory generates the same graphs)
/// with zero-realloc graph construction per replication.
[[nodiscard]] PortfolioCost measure_weak_portfolio(
    const ScratchGraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);
[[nodiscard]] PortfolioCost measure_strong_portfolio(
    const ScratchGraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Selector: start at vertex 0 (the paper's oldest vertex), target the last
/// vertex (the paper's vertex n).
[[nodiscard]] EndpointSelector oldest_to_newest();

/// Selector: uniform random start, target the last vertex.
[[nodiscard]] EndpointSelector random_to_newest();

/// Selector: start at the last vertex, target a fixed paper id (1-based).
[[nodiscard]] EndpointSelector newest_to_paper_id(std::size_t paper_id);

}  // namespace sfs::sim
