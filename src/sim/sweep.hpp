// Portfolio search-cost measurement: run every weak (or strong) policy on
// freshly generated graphs and summarize the charged-request cost per
// policy. The minimum over the portfolio is the empirical stand-in for
// "any algorithm" in the lower-bound experiments.
//
// Replications can be fanned out over the deterministic parallel executor
// (sim/parallel.hpp). Because every replication derives its own seeds from
// (seed, rep) and results are folded in replication order, the summaries
// are bit-identical for any thread count, including 1. Parallelism is
// opt-in (`threads` defaults to 1): passing 0 or >1 requires the caller's
// factory and endpoint selector to be safe to call concurrently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "search/runner.hpp"
#include "search/strong_algorithms.hpp"
#include "search/weak_algorithms.hpp"
#include "stats/summary.hpp"

namespace sfs::sim {

/// Builds one experiment graph from a replication RNG.
using GraphFactory = std::function<graph::Graph(rng::Rng& rng)>;

/// Scratch-aware factory: regenerates `out` in place from the replication
/// RNG, recycling the worker's generator scratch and the Graph's own CSR
/// buffers (use the scratch-taking generator overloads in gen/). The
/// harness owns one GenScratch + Graph per worker, so a portfolio sweep
/// allocates nothing per replication in steady state.
using ScratchGraphFactory = std::function<void(
    rng::Rng& rng, gen::GenScratch& scratch, graph::Graph& out)>;

/// Picks start/target on a freshly built graph (e.g. "vertex 0" and "last
/// vertex"). Called per replication.
using EndpointSelector =
    std::function<std::pair<graph::VertexId, graph::VertexId>(
        const graph::Graph& g, rng::Rng& rng)>;

/// Per-policy cost summary over the replications.
struct PolicyCost {
  std::string name;
  stats::Summary requests;       // charged requests
  stats::Summary raw_requests;   // incl. repeats (walks)
  double median_requests = 0.0;  // median charged requests over reps
  double p90_requests = 0.0;     // 90th percentile charged requests
  double found_fraction = 0.0;   // replications that reached the target
};

struct PortfolioCost {
  std::vector<PolicyCost> policies;
  /// Index into policies of the best (lowest mean charged requests among
  /// policies that always found the target; falls back to lowest mean).
  std::size_t best = 0;

  [[nodiscard]] const PolicyCost& best_policy() const {
    return policies.at(best);
  }
};

/// Measures the full weak portfolio (weak_portfolio()) on `reps` fresh
/// graphs. Every policy sees the same sequence of graphs (same graph seeds)
/// so the comparison is paired. `threads` selects the replication fan-out:
/// 1 (the default) = sequential, 0 = the shared pool (default worker
/// count), n = a pool of n workers; the result is bit-identical in all
/// cases. Any value other than 1 requires the factory and endpoint
/// selector to be safe to call concurrently.
[[nodiscard]] PortfolioCost measure_weak_portfolio(
    const GraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Same for the strong portfolio (strong_portfolio()).
[[nodiscard]] PortfolioCost measure_strong_portfolio(
    const GraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Scratch-aware variants: identical measurement (same seeds, same fold,
/// bit-identical PortfolioCost when the factory generates the same graphs)
/// with zero-realloc graph construction per replication.
[[nodiscard]] PortfolioCost measure_weak_portfolio(
    const ScratchGraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);
[[nodiscard]] PortfolioCost measure_strong_portfolio(
    const ScratchGraphFactory& factory, const EndpointSelector& endpoints,
    std::size_t reps, std::uint64_t seed,
    const search::RunBudget& budget = {}, std::size_t threads = 1);

/// Selector: start at vertex 0 (the paper's oldest vertex), target the last
/// vertex (the paper's vertex n).
[[nodiscard]] EndpointSelector oldest_to_newest();

/// Selector: uniform random start, target the last vertex.
[[nodiscard]] EndpointSelector random_to_newest();

/// Selector: start at the last vertex, target a fixed paper id (1-based).
[[nodiscard]] EndpointSelector newest_to_paper_id(std::size_t paper_id);

}  // namespace sfs::sim
