// Unified experiment engine: a registry of named experiment scenarios plus
// the shared CLI layer behind the single `sfs_bench` driver.
//
// Every experiment that used to be its own bench binary (e1-e12 the paper
// claims, a1-a3 the ablations, m1-m4 the machine benchmarks) registers an
// ExperimentSpec — name, one-line claim, parameter schema with typed
// defaults, capability set, and a run function — via a static
// ExperimentRegistrar in its own translation unit. The driver then offers
//
//   sfs_bench --list                      catalog of registered experiments
//   sfs_bench --list-names                bare names, one per line (CI loop)
//   sfs_bench --run <name> [flags]        run one experiment
//
// with one flag vocabulary across all experiments: --sizes/--n, --reps,
// --seed, --threads, --quick, --large, --checkpoint <path>, --json <path>.
// Unknown or malformed flags exit 2 with usage; a flag an experiment does
// not support is rejected the same way (the generalization of the old
// bench_e1 "--quick requires --large" rule — nothing is silently ignored).
// Adding a scenario is a ~30-line registration, not a new binary.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/report.hpp"

namespace sfs::sim {

/// One entry of an experiment's parameter schema: which shared CLI knob it
/// honors, the value type, the default, and what the knob means for this
/// experiment. Rendered by --list/--run usage and docs/EXPERIMENTS.md.
struct ParamSpec {
  std::string flag;           // e.g. "--sizes"
  std::string type;           // e.g. "size list", "count", "u64 seed"
  std::string default_value;  // human-readable default
  std::string description;    // what the knob controls here
};

/// Capability bits: which shared flags an experiment accepts. The CLI
/// layer rejects (exit 2) any flag whose bit is missing, so an experiment
/// can never silently discard an argument.
enum ExperimentCaps : unsigned {
  kCapQuick = 1u << 0,       // --quick: reduced smoke-size budget
  kCapLarge = 1u << 1,       // --large: the large-n grid mode
  kCapCheckpoint = 1u << 2,  // --checkpoint: stream/resume sweep cells
  kCapSizes = 1u << 3,       // --sizes/--n: override the size grid
  kCapReps = 1u << 4,        // --reps: override replication count
  kCapSeed = 1u << 5,        // --seed: override the base seed
  kCapThreads = 1u << 6,     // --threads: worker count for the fan-out
  kCapSingleSize = 1u << 7,  // --n (or a one-element --sizes): experiments
                             // with one problem size; longer lists exit 2
  kCapGbenchFlags = 1u << 8,  // --benchmark_*: passed through verbatim to
                              // google-benchmark (m1/m2)
  kCapPolicies = 1u << 9,  // --policies a,b,c: run only the named search
                           // policies (resolved against the policy
                           // registry, search/policy.hpp)
  kCapShard = 1u << 10,  // --shard i/k: compute only shard i of the grid
                         // (sim::measure_scaling_shard); requires a grid
                         // mode and --checkpoint
};

/// Parsed shared-flag values for one run. Flags the user did not pass are
/// left at their "unset" encoding (empty sizes, reps 0, has_* false) so
/// experiments can distinguish an override from a default.
struct ExperimentOptions {
  bool quick = false;
  bool large = false;
  std::vector<std::size_t> sizes;  // empty = experiment default
  std::size_t reps = 0;            // 0 = experiment default
  std::uint64_t seed = 0;
  bool has_seed = false;
  std::size_t threads = 0;  // meaningful only when has_threads
  bool has_threads = false;
  std::string checkpoint_path;
  std::string json_path;
  /// --shard i/k: this process owns shard `shard_index` of `shard_count`
  /// over the sweep grid (meaningful only when has_shard; validation
  /// additionally requires kCapShard, a grid mode and --checkpoint).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  bool has_shard = false;
  /// --policies names (comma-separated on the command line; empty = the
  /// experiment's default portfolio). Experiments pass this as the
  /// RunPlan/QueryEngine policy filter; unknown names fail inside the run
  /// with the registry's diagnostic.
  std::vector<std::string> policies;
  /// --benchmark_* flags, forwarded verbatim to google-benchmark by the
  /// gbench experiments (rejected unless the spec has kCapGbenchFlags).
  std::vector<std::string> gbench_flags;
};

struct ExperimentSpec;

/// Everything a registered run function receives: the parsed options, the
/// structured-results emitter (console + optional JSONL sink), and seed /
/// default helpers.
struct ExperimentContext {
  const ExperimentSpec* spec = nullptr;
  ExperimentOptions options;
  ResultsEmitter* emitter = nullptr;

  [[nodiscard]] std::ostream& console() const {
    return emitter->console();
  }

  /// The run's base seed: --seed when given, else the spec's registered
  /// default (which is derived from the experiment name unless pinned —
  /// see experiment_seed()).
  [[nodiscard]] std::uint64_t base_seed() const;

  /// An independent named substream of the base seed, for experiments
  /// that need several internal seeds (a sweep stream, a detail-table
  /// stream, a per-preset stream, ...). Replaces the old hand-picked
  /// per-bench constants (0xE1, 0x1E1, 0x7E7, ...): streams are derived
  /// from (base seed, stream name) through rng::derive_stream_seed, so
  /// they cannot collide by hand-picking.
  [[nodiscard]] std::uint64_t stream_seed(std::string_view stream) const;

  /// CLI override helpers: the user's value when given, else `fallback`.
  [[nodiscard]] std::size_t reps_or(std::size_t fallback) const {
    return options.reps > 0 ? options.reps : fallback;
  }
  [[nodiscard]] std::vector<std::size_t> sizes_or(
      std::vector<std::size_t> fallback) const {
    return options.sizes.empty() ? std::move(fallback) : options.sizes;
  }
  /// Single-size experiments (kCapSingleSize): the --n value, or
  /// `fallback`. Validation guarantees at most one entry here.
  [[nodiscard]] std::size_t n_or(std::size_t fallback) const {
    return options.sizes.empty() ? fallback : options.sizes.front();
  }
  /// Worker-count argument for the replication harnesses: --threads when
  /// given, else 0 (the shared pool, the historical bench default).
  [[nodiscard]] std::size_t threads() const {
    return options.has_threads ? options.threads : 0;
  }
};

/// A registered experiment scenario.
struct ExperimentSpec {
  std::string name;   // short id: "e1", "a2", "m3", ...
  std::string title;  // one-line description for --list
  std::string claim;  // the paper claim / reference the run regenerates

  /// Base seed when --seed is absent. 0 means "derive from the name"
  /// (experiment_seed(name)); a nonzero value pins a legacy seed —
  /// e1/e2 pin theirs so grid outputs and on-disk checkpoint meta rows
  /// stay bit-compatible with the pre-registry bench binaries.
  std::uint64_t default_seed = 0;

  unsigned caps = kCapQuick | kCapSeed;

  /// Include in the registry-wide smoke loop (tests/test_experiment_smoke
  /// runs every smoke experiment under a tiny --quick budget). The
  /// google-benchmark microbench experiments opt out; CI still runs them
  /// through the driver loop.
  bool smoke = true;

  std::vector<ParamSpec> params;

  /// Runs the experiment; returns the process exit code (0 = success,
  /// 1 = a result contract failed). Usage errors never reach run().
  std::function<int(ExperimentContext&)> run;

  /// The seed a default run of this spec uses (default_seed, or the
  /// name-derived seed when default_seed == 0).
  [[nodiscard]] std::uint64_t resolved_default_seed() const;
};

/// Deterministic name-derived experiment seed: mix64(fnv1a64(name)).
/// Distinct registered names get distinct seeds with overwhelming
/// probability, and the registry verifies uniqueness at registration, so
/// two experiments can no longer alias their RNG streams by hand-picking
/// nearby constants.
[[nodiscard]] std::uint64_t experiment_seed(std::string_view name) noexcept;

/// Named substream of a base seed (see ExperimentContext::stream_seed):
/// rng::derive_stream_seed(base, mix64(fnv1a64(stream)), 0), routed
/// through the SFS_RNG_AUDIT recorder (throws std::logic_error on a
/// cross-triple collision when the audit is enabled).
[[nodiscard]] std::uint64_t experiment_stream_seed(std::uint64_t base,
                                                   std::string_view stream);

/// The experiment registry. The process-wide instance() is populated by
/// static ExperimentRegistrar objects; tests construct their own instances
/// to exercise registration rules in isolation.
class ExperimentRegistry {
 public:
  /// Registers a spec. Throws std::invalid_argument on an empty name or a
  /// missing run function, a duplicate name, or a resolved default seed
  /// already claimed by another experiment (the "cannot collide" rule).
  void add(ExperimentSpec spec);

  /// Looks up a spec by name; nullptr when absent.
  [[nodiscard]] const ExperimentSpec* find(std::string_view name) const;

  /// All specs in catalog order: e* before a* before m*, numerically
  /// within a family ("e2" < "e10"), other names alphabetically last.
  [[nodiscard]] std::vector<const ExperimentSpec*> all() const;

  [[nodiscard]] std::size_t size() const noexcept { return specs_.size(); }

  static ExperimentRegistry& instance();

 private:
  std::vector<ExperimentSpec> specs_;
};

/// Registers a spec with ExperimentRegistry::instance() at static
/// initialization. Define one per experiment translation unit.
struct ExperimentRegistrar {
  explicit ExperimentRegistrar(ExperimentSpec spec);
};

/// Parsed top-level request of the driver CLI.
struct CliRequest {
  bool list = false;
  bool list_names = false;
  std::string run_name;  // empty unless --run given
  ExperimentOptions options;
};

/// Parses a comma-separated list of non-empty names ("rw,degree-greedy")
/// into `out`; false (with `out` unspecified) on an empty string or an
/// empty token. The --policies value parser, shared with sfsearch_cli.
/// Membership in the policy registry is checked by the run itself
/// (search/resolve_policies), not the CLI layer.
[[nodiscard]] bool parse_name_list(const std::string& text,
                                   std::vector<std::string>& out);

/// Parses driver arguments (argv[1..]) into a CliRequest. Returns false
/// with a diagnostic in `error` on an unknown flag, a flag missing its
/// value, a malformed number, or a missing/duplicate action.
[[nodiscard]] bool parse_experiment_cli(const std::vector<std::string>& args,
                                        CliRequest& out, std::string& error);

/// Validates parsed options against a spec's capability set. Returns
/// false with a diagnostic when a flag the experiment does not support
/// was passed, or when --checkpoint is used outside a grid mode
/// (--large/--quick) for experiments that checkpoint their sweeps.
[[nodiscard]] bool validate_experiment_options(const ExperimentSpec& spec,
                                               const ExperimentOptions& options,
                                               std::string& error);

/// Prints the driver usage summary (and, when `spec` is non-null, that
/// experiment's supported flags and parameter schema).
void print_experiment_usage(std::ostream& out, const ExperimentSpec* spec);

/// The sfs_bench main: parse, dispatch --list/--list-names/--run.
/// Exit codes: 0 success, 1 experiment result-contract failure or runtime
/// error, 2 usage error.
[[nodiscard]] int experiment_main(int argc, char** argv);

/// Compatibility entry point for the per-experiment thin wrappers
/// (bench_e1_thm1_weak & co.): behaves like
/// `sfs_bench --run <name> <argv[1..]>`.
[[nodiscard]] int experiment_main_for(std::string_view name, int argc,
                                      char** argv);

}  // namespace sfs::sim
