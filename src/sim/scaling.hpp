// Scaling experiments: measure a scalar quantity at a sweep of problem
// sizes with independent replications, then fit the growth exponent.
//
// This is the workhorse of experiments E1-E3, E5, E7 and E8: "does measured
// cost grow like n^b with the b the theorem predicts?" Large-n sweeps get
// three production features on top of the basic grid (see docs/PERF.md):
//
//  - honest error bars on the exponent: a variance-weighted log-log fit
//    alongside the OLS fit, and a stratified bootstrap CI on the slope
//    computed from the per-point raw replications;
//  - checkpoint/resume: completed (n, rep, value) cells stream to a CSV
//    checkpoint as they finish, and a rerun pointed at the same file
//    recomputes only the missing cells — with bit-identical seeds, so the
//    resumed series equals the uninterrupted one bit for bit;
//  - RNG stream auditing: under SFS_RNG_AUDIT=1 every per-cell seed
//    derivation is recorded and cross-checked for collisions
//    (rng/stream_audit.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gen/scratch.hpp"
#include "stats/bootstrap.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace sfs::sim {

/// One sweep point: size n with its replicated measurements summarized.
struct ScalingPoint {
  std::size_t n = 0;
  stats::Summary summary;
  std::vector<double> raw;  // all replication values, for quantiles
};

/// A full sweep plus the fitted log-log slope over the point means.
struct ScalingSeries {
  std::vector<ScalingPoint> points;

  /// OLS fit of log(mean) vs log(n) over points with positive means.
  /// Default-constructed (fit.count == 0) when fewer than two points
  /// qualified, degenerate when the qualifying sizes collapsed to one
  /// value — check has_fit() before quoting fit.slope; a
  /// default-constructed fit reads as slope 0.0, which is NOT a measured
  /// exponent.
  stats::LinearFit fit;

  /// Variance-weighted log-log fit over the same points: each point is
  /// weighted by 1 / Var(log mean) ≈ (mean / stderr_mean)^2 (delta
  /// method), so noisy points — typically the few-rep high-n ones — do
  /// not drown out the rest. Points whose stderr is zero (deterministic
  /// measure, or a single rep) borrow the smallest positive relative
  /// error in the sweep; if no point has one, the weights are uniform and
  /// this equals `fit`.
  stats::LinearFit weighted_fit;

  /// Stratified bootstrap CI of the OLS slope (resampling replications
  /// within each size; see bootstrap_slope_ci). replicates == 0 when not
  /// computed (ScalingOptions::bootstrap_replicates == 0) or when too few
  /// resamples produced a fittable grid.
  stats::BootstrapCi slope_ci;

  /// Sizes n excluded from the fits (non-positive or non-finite mean),
  /// in sweep order. Report these: a silently shrinking fit is how a
  /// broken measure function masquerades as a clean exponent.
  std::vector<std::size_t> excluded;

  /// True when `fit` is usable (>= 2 positive-mean points, non-collapsed
  /// sizes). Benches must assert this before reporting fit.slope.
  [[nodiscard]] bool has_fit() const noexcept { return fit.ok(); }

  /// Means per point (same order as points).
  [[nodiscard]] std::vector<double> means() const;
  /// Sizes per point as doubles.
  [[nodiscard]] std::vector<double> sizes() const;
};

/// Knobs for measure_scaling beyond the grid itself.
struct ScalingOptions {
  /// Replication fan-out: 1 = sequential (default), 0 = shared pool,
  /// n = pool of n workers. Any value other than 1 requires `measure` to
  /// be safe to call concurrently.
  std::size_t threads = 1;

  /// When non-empty, completed (n, rep, value) cells stream to this CSV
  /// file as they finish and a rerun resumes from it: cells already in
  /// the file are restored (bit-exact: values round-trip through 17
  /// significant digits) and only missing cells are measured, with the
  /// same derived seeds as an uninterrupted run. The file's header row
  /// records (seed, reps, sizes); resuming with a mismatched grid throws.
  std::string checkpoint_path{};

  /// When > 0, fill ScalingSeries::slope_ci with a stratified bootstrap
  /// CI over this many resamples (200-1000 is typical). Skipped when the
  /// series ends up with no usable fit (slope_ci stays replicates == 0):
  /// an interval for a slope that does not exist is not a measurement.
  std::size_t bootstrap_replicates = 0;
  /// Two-sided miscoverage of the bootstrap interval (0.05 => 95% CI).
  double bootstrap_alpha = 0.05;
  /// Seed of the bootstrap resampling stream. Independent of the
  /// measurement seed so the CI is reproducible for a fixed series.
  std::uint64_t bootstrap_seed = 0xB007CAFEULL;
};

/// Measures `measure(n, seed)` for every n in `sizes`, `reps` times each
/// and fits the exponent. Replication r of size index i receives
/// derive_stream_seed(seed, mix64(0x9e37 + i), r): the per-size stream tag
/// is tempered through mix64 so that experiments whose seeds differ by a
/// small XOR delta (the old untempered scheme collided e.g. seeds 0x0F
/// apart at adjacent size indices) cannot share RNG streams at shifted
/// indices. `measure` must return a positive value for a point to enter
/// the fit; non-positive values are recorded, and points whose mean ends
/// up non-positive are listed in ScalingSeries::excluded.
///
/// The size x replication grid is fanned out over the parallel executor
/// per ScalingOptions::threads. Replication values are stored and folded
/// in (size, rep) order, so the series is bit-identical for any thread
/// count — and, via the checkpoint, across interrupted/resumed runs.
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed)>& measure,
    const ScalingOptions& options);

/// Scratch-aware variant: `measure` additionally receives a per-worker
/// gen::GenScratch so graph construction inside the measure callback can
/// recycle buffers across the whole size x replication grid (pair it with
/// the scratch-taking generator overloads in gen/). Seeds, fold order and
/// the fitted series are identical to the plain overload.
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed,
                               gen::GenScratch& scratch)>& measure,
    const ScalingOptions& options);

/// Sharded sweep: computes only the grid cells this shard owns and
/// streams them to ScalingOptions::checkpoint_path (required — the
/// checkpoint IS the shard's output; there is no folded series to
/// return). Cell ownership is `(i * reps + r) % shard_count ==
/// shard_index` over the same flattened task order the unsharded run
/// uses, and every cell's seed stays the pure (size, rep) derivation —
/// so k shard processes writing k checkpoints, merged with
/// merge_checkpoints and folded by pointing an unsharded measure_scaling
/// at the merged file, produce a ScalingSeries bit-identical to one
/// process computing the whole grid, at any thread count per shard.
/// Resumable like any checkpointed run: cells already in this shard's
/// file are skipped. Returns the number of cells measured by this call.
std::size_t measure_scaling_shard(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed)>& measure,
    const ScalingOptions& options, std::size_t shard_index,
    std::size_t shard_count);

/// Scratch-aware shard variant (see the scratch measure_scaling overload).
std::size_t measure_scaling_shard(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed,
                               gen::GenScratch& scratch)>& measure,
    const ScalingOptions& options, std::size_t shard_index,
    std::size_t shard_count);

/// Folds k per-shard checkpoint CSVs into one checkpoint at `output`.
/// Every input must carry the identical (seed, reps, sizes) meta row;
/// completed cells are deduplicated by (size_index, rep) — a duplicate
/// must agree exactly (verbatim value string) or the merge throws — and
/// written sorted by (size_index, rep) with values byte-for-byte as the
/// shards recorded them. Pointing measure_scaling at the merged file then
/// replays every cell without recomputation, so the folded series is
/// bit-identical to a single-process run. Torn/repaired trailing rows in
/// the inputs are skipped exactly as resume would skip them. Returns the
/// number of distinct cells in the merged file.
std::size_t merge_checkpoints(const std::vector<std::string>& inputs,
                              const std::string& output);

/// Back-compat conveniences: options defaulted except the thread count.
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed)>& measure,
    std::size_t threads = 1);
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed,
                               gen::GenScratch& scratch)>& measure,
    std::size_t threads = 1);

/// Stratified bootstrap CI of the fitted OLS slope of `series`: each
/// resample draws, within every point, `raw.size()` values with
/// replacement, recomputes the means, and refits the power law over the
/// positive ones. Resamples that leave fewer than two fittable points are
/// dropped. Deterministic in `seed`; measure_scaling calls this when
/// ScalingOptions::bootstrap_replicates > 0, and callers may recompute
/// with different replicates/alpha from a stored series. Requires
/// series.has_fit(): individual resamples of a no-fit series can still be
/// fittable, and an interval around a slope the series declares
/// unmeasured would be a fabricated error bar (throws
/// std::invalid_argument instead).
[[nodiscard]] stats::BootstrapCi bootstrap_slope_ci(const ScalingSeries& series,
                                                    std::size_t replicates,
                                                    double alpha,
                                                    std::uint64_t seed);

/// Geometric grid of sizes from `lo` to `hi` with `count` points, rounded
/// to distinct integers: strictly increasing, starting at `lo` and ending
/// exactly at `hi` (rounded points that would overshoot `hi` by floating-
/// point drift are clamped).
[[nodiscard]] std::vector<std::size_t> geometric_sizes(std::size_t lo,
                                                       std::size_t hi,
                                                       std::size_t count);

}  // namespace sfs::sim
