// Scaling experiments: measure a scalar quantity at a sweep of problem
// sizes with independent replications, then fit the growth exponent.
//
// This is the workhorse of experiments E1-E3, E5, E7 and E8: "does measured
// cost grow like n^b with the b the theorem predicts?"
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "gen/scratch.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace sfs::sim {

/// One sweep point: size n with its replicated measurements summarized.
struct ScalingPoint {
  std::size_t n = 0;
  stats::Summary summary;
  std::vector<double> raw;  // all replication values, for quantiles
};

/// A full sweep plus the fitted log-log slope over the point means.
struct ScalingSeries {
  std::vector<ScalingPoint> points;
  stats::LinearFit fit;  // log(mean) vs log(n)

  /// Means per point (same order as points).
  [[nodiscard]] std::vector<double> means() const;
  /// Sizes per point as doubles.
  [[nodiscard]] std::vector<double> sizes() const;
};

/// Measures `measure(n, seed)` for every n in `sizes`, `reps` times each
/// and fits the exponent. Replication r of size index i receives
/// derive_stream_seed(seed, mix64(0x9e37 + i), r): the per-size stream tag
/// is tempered through mix64 so that experiments whose seeds differ by a
/// small XOR delta (the old untempered scheme collided e.g. seeds 0x0F
/// apart at adjacent size indices) cannot share RNG streams at shifted
/// indices. `measure` must return a positive value for the fit to be
/// meaningful; non-positive values are recorded but excluded from the fit.
///
/// The size x replication grid can be fanned out over the parallel
/// executor (`threads`: 1 (the default) = sequential, 0 = shared pool,
/// n = pool of n workers); any value other than 1 requires `measure` to be
/// safe to call concurrently. Replication values are stored and folded in
/// (size, rep) order, so the series is bit-identical for any thread count.
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed)>& measure,
    std::size_t threads = 1);

/// Scratch-aware variant: `measure` additionally receives a per-worker
/// gen::GenScratch so graph construction inside the measure callback can
/// recycle buffers across the whole size x replication grid (pair it with
/// the scratch-taking generator overloads in gen/). Seeds, fold order and
/// the fitted series are identical to the plain overload.
[[nodiscard]] ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t n, std::uint64_t seed,
                               gen::GenScratch& scratch)>& measure,
    std::size_t threads = 1);

/// Geometric grid of sizes from `lo` to `hi` (inclusive-ish) with `count`
/// points, rounded to distinct integers.
[[nodiscard]] std::vector<std::size_t> geometric_sizes(std::size_t lo,
                                                       std::size_t hi,
                                                       std::size_t count);

}  // namespace sfs::sim
