#include "sim/report.hpp"

#include <iostream>
#include <stdexcept>

#include "sim/json.hpp"
#include "sim/table.hpp"

namespace sfs::sim {

ResultsEmitter::ResultsEmitter(std::ostream& console) : console_(&console) {}
ResultsEmitter::ResultsEmitter() : console_(&std::cout) {}

void ResultsEmitter::open_jsonl(const std::string& path) {
  file_.open(path, std::ios::out | std::ios::trunc);
  if (!file_) {
    // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
    throw std::runtime_error("cannot open JSONL results file: " + path);
  }
  has_file_ = true;
  file_path_ = path;
}

void ResultsEmitter::emit_object(const std::string& json_object) {
  *console_ << "BENCH_JSON " << json_object << "\n";
  if (has_file_) {
    file_ << json_object << "\n" << std::flush;
    if (!file_) {
      // SFS_LINT_ALLOW(check-discipline): environmental I/O failure; runtime_error is the documented contract
      throw std::runtime_error("write to JSONL results file failed: " +
                               file_path_);
    }
  }
}

void ResultsEmitter::emit_point(const std::string& name, std::size_t n,
                                std::size_t reps, double mean,
                                double stderr_mean, double wall_seconds) {
  JsonObjectWriter w;
  w.str_field("bench", name)
      .int_field("n", n)
      .int_field("reps", reps)
      .num_field("mean", mean)
      .num_field("stderr", stderr_mean);
  if (wall_seconds < 0.0) {
    w.null_field("wall_s");
  } else {
    w.num_field("wall_s", wall_seconds);
  }
  emit_object(w.str());
}

void ResultsEmitter::emit_fit(const std::string& name,
                              const ScalingSeries& series) {
  const bool has_ci = series.slope_ci.replicates > 0;
  JsonObjectWriter w;
  w.str_field("bench", name).str_field("kind", "fit");
  if (series.has_fit()) {
    w.num_field("slope", series.fit.slope)
        .num_field("slope_stderr", series.fit.slope_stderr)
        .num_field("r2", series.fit.r_squared)
        .num_field("wslope", series.weighted_fit.slope)
        .num_field("wslope_stderr", series.weighted_fit.slope_stderr);
  } else {
    w.null_field("slope")
        .null_field("slope_stderr")
        .null_field("r2")
        .null_field("wslope")
        .null_field("wslope_stderr");
  }
  if (has_ci) {
    w.num_field("ci_lo", series.slope_ci.lo)
        .num_field("ci_hi", series.slope_ci.hi);
  } else {
    w.null_field("ci_lo").null_field("ci_hi");
  }
  w.int_field("ci_reps", series.slope_ci.replicates)
      .int_field("points", series.points.size())
      .int_field("excluded", series.excluded.size());
  emit_object(w.str());
}

void print_scaling(const std::string& title, const ScalingSeries& series,
                   const std::string& quantity, double theory_slope,
                   const std::string& theory_label,
                   ResultsEmitter& emitter) {
  std::ostream& out = emitter.console();
  Table t(title, {"n", quantity, "stderr", "min", "max"});
  for (const auto& pt : series.points) {
    t.row()
        .integer(pt.n)
        .num(pt.summary.mean, 2)
        .num(pt.summary.stderr_mean, 2)
        .num(pt.summary.min, 1)
        .num(pt.summary.max, 1);
  }
  t.print(out);
  if (series.has_fit()) {
    out << "fitted exponent: " << format_double(series.fit.slope, 3)
        << " +/- " << format_double(series.fit.slope_stderr, 3);
    if (series.slope_ci.replicates > 0) {
      out << "  [boot " << format_double(series.slope_ci.lo, 3) << ", "
          << format_double(series.slope_ci.hi, 3) << "]";
    }
    out << "  (R^2 " << format_double(series.fit.r_squared, 3)
        << ", weighted " << format_double(series.weighted_fit.slope, 3)
        << " +/- " << format_double(series.weighted_fit.slope_stderr, 3)
        << ")   theory " << theory_label << ": "
        << format_double(theory_slope, 3) << "\n";
  } else {
    out << "no usable fit ("
        << (series.points.size() - series.excluded.size())
        << " fittable points)   theory " << theory_label << ": "
        << format_double(theory_slope, 3) << "\n";
  }
  if (!series.excluded.empty()) {
    out << "excluded from fit (non-positive mean):";
    for (const std::size_t n : series.excluded) out << " n=" << n;
    out << "\n";
  }
  out << "\n";
  for (const auto& pt : series.points) {
    emitter.emit_point(title, pt.n, pt.summary.count, pt.summary.mean,
                       pt.summary.stderr_mean, /*wall_seconds=*/-1.0);
  }
  emitter.emit_fit(title, series);
}

LargeRunPlan plan_large_run(bool quick, const std::string& checkpoint_path,
                            std::size_t threads) {
  LargeRunPlan plan;
  plan.sizes = quick ? geometric_sizes(4096, 16384, 3)
                     : geometric_sizes(65536, 2097152, 6);
  plan.reps = quick ? 2 : 3;
  plan.options.threads = threads;  // 0 = shared pool; measure lambdas must
                                   // be thread-safe
  plan.options.checkpoint_path = checkpoint_path;
  plan.options.bootstrap_replicates = quick ? 100 : 400;
  return plan;
}

int report_large_run(const std::string& title, const LargeRunPlan& plan,
                     const ScalingSeries& series, const std::string& quantity,
                     double theory_slope, const std::string& theory_label,
                     double wall_seconds, ResultsEmitter& emitter) {
  print_scaling(title, series, quantity, theory_slope, theory_label, emitter);
  emitter.console() << "grid " << plan.sizes.front() << " .. "
                    << plan.sizes.back() << " (" << plan.sizes.size()
                    << " sizes x " << plan.reps << " reps), wall "
                    << format_double(wall_seconds, 1) << " s\n";
  if (!series.has_fit()) {
    std::cerr << title << ": no usable exponent fit ("
              << series.excluded.size() << " of " << series.points.size()
              << " points excluded)\n";
    return 1;
  }
  if (series.slope_ci.replicates == 0) {
    std::cerr << title << ": bootstrap CI could not be computed\n";
    return 1;
  }
  return 0;
}

}  // namespace sfs::sim
