#include "sim/scaling.hpp"

#include <cmath>

#include "base/check.hpp"
#include "rng/random.hpp"
#include "sim/parallel.hpp"

namespace sfs::sim {

std::vector<double> ScalingSeries::means() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.summary.mean);
  return out;
}

std::vector<double> ScalingSeries::sizes() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(static_cast<double>(p.n));
  return out;
}

namespace {

// Stream tag of size index i. The tag is tempered through mix64: the old
// scheme (point seed = mix64(seed ^ (0x9e37 + i)), i.e. an untempered
// XOR tag) let two experiments whose seeds differ by a small XOR delta —
// (0x9e37+i1) ^ (0x9e37+i2), e.g. 0x0F for adjacent indices — share an
// entire per-size replication stream at shifted size indices. Tempering
// makes inter-tag XOR deltas full-entropy 64-bit values, so nearby seeds
// cannot alias. Routed through derive_stream_seed like sweep.cpp's
// streams, which keeps the stream-discipline note in rng/random.cpp
// honest (every harness derives streams the same way).
std::uint64_t size_stream(std::size_t i) {
  return rng::mix64(0x9e37ULL + i);
}

// Invoke: (n, cell_seed, worker) -> double, shared by the plain and
// scratch-aware overloads.
template <typename Invoke>
ScalingSeries measure_scaling_impl(const std::vector<std::size_t>& sizes,
                                   std::size_t reps, std::uint64_t seed,
                                   std::size_t threads,
                                   const Invoke& invoke) {
  SFS_REQUIRE(!sizes.empty(), "empty size sweep");
  SFS_REQUIRE(reps >= 1, "need at least one replication");
  ScalingSeries series;
  series.points.resize(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    series.points[i].n = sizes[i];
    series.points[i].raw.resize(reps);
  }
  // Fan the whole size x replication grid out at once: sizes near the top
  // of the sweep dominate the cost, so scheduling the grid dynamically
  // keeps workers busy across size boundaries. Each cell's seed depends
  // only on (i, r), and each cell writes its own slot, so the series is
  // identical for any thread count.
  parallel_for(sizes.size() * reps, threads,
               [&](std::size_t task, std::size_t worker) {
                 const std::size_t i = task / reps;
                 const std::size_t r = task % reps;
                 series.points[i].raw[r] = invoke(
                     sizes[i],
                     rng::derive_stream_seed(seed, size_stream(i), r),
                     worker);
               });
  for (auto& point : series.points) {
    point.summary = stats::summarize(point.raw);
  }

  // Fit over points with positive means.
  std::vector<double> xs;
  std::vector<double> ys;
  for (const auto& p : series.points) {
    if (p.summary.mean > 0.0) {
      xs.push_back(static_cast<double>(p.n));
      ys.push_back(p.summary.mean);
    }
  }
  if (xs.size() >= 2) series.fit = stats::fit_power_law(xs, ys);
  return series;
}

}  // namespace

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure,
    std::size_t threads) {
  return measure_scaling_impl(
      sizes, reps, seed, threads,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t) {
        return measure(n, cell_seed);
      });
}

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t,
                               gen::GenScratch&)>& measure,
    std::size_t threads) {
  // One generator scratch per worker, mirroring sim/sweep's WorkerState.
  std::vector<gen::GenScratch> scratches(resolve_worker_count(threads));
  return measure_scaling_impl(
      sizes, reps, seed, threads,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t worker) {
        return measure(n, cell_seed, scratches[worker]);
      });
}

std::vector<std::size_t> geometric_sizes(std::size_t lo, std::size_t hi,
                                         std::size_t count) {
  SFS_REQUIRE(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
  SFS_REQUIRE(count >= 2, "need at least two sizes");
  std::vector<std::size_t> sizes;
  const double ratio = std::pow(static_cast<double>(hi) / static_cast<double>(lo),
                                1.0 / static_cast<double>(count - 1));
  double x = static_cast<double>(lo);
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<std::size_t>(std::llround(x));
    if (sizes.empty() || v > sizes.back()) sizes.push_back(v);
    x *= ratio;
  }
  if (sizes.back() != hi) sizes.push_back(hi);
  return sizes;
}

}  // namespace sfs::sim
