#include "sim/scaling.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "base/check.hpp"
#include "base/sync.hpp"
#include "base/thread_annotations.hpp"
#include "rng/random.hpp"
#include "rng/stream_audit.hpp"
#include "sim/csv.hpp"
#include "sim/parallel.hpp"
#include "sim/worker_context.hpp"

namespace sfs::sim {

std::vector<double> ScalingSeries::means() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.summary.mean);
  return out;
}

std::vector<double> ScalingSeries::sizes() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(static_cast<double>(p.n));
  return out;
}

namespace {

// Stream tag of size index i. The tag is tempered through mix64: the old
// scheme (point seed = mix64(seed ^ (0x9e37 + i)), i.e. an untempered
// XOR tag) let two experiments whose seeds differ by a small XOR delta —
// (0x9e37+i1) ^ (0x9e37+i2), e.g. 0x0F for adjacent indices — share an
// entire per-size replication stream at shifted size indices. Tempering
// makes inter-tag XOR deltas full-entropy 64-bit values, so nearby seeds
// cannot alias. Routed through derive_stream_seed like sweep.cpp's
// streams, which keeps the stream-discipline note in rng/random.cpp
// honest (every harness derives streams the same way).
std::uint64_t size_stream(std::size_t i) {
  return rng::mix64(0x9e37ULL + i);
}

// ------------------------------------------------------------ checkpoint
//
// CSV layout (sim/csv): a meta row binding the file to one (seed, reps,
// sizes) grid, a header row, then one row per completed cell. The trailing
// "end" sentinel field rejects rows cut off mid-write — a torn value like
// "4.5" truncated from "4.55" still parses as a double, but the missing
// sentinel unmasks it. Only the final line of a file may be torn (rows are
// flushed whole, in order); a malformed row anywhere else means the file
// is not one of ours and resuming would corrupt the experiment.

constexpr const char* kCkptMagic = "sfs_scaling_checkpoint";
constexpr const char* kCkptVersion = "v1";
constexpr const char* kCkptEnd = "end";

std::string join_sizes(const std::vector<std::size_t>& sizes) {
  std::string out;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i > 0) out += ';';
    out += std::to_string(sizes[i]);
  }
  return out;
}

// std::to_chars shortest form round-trips every finite double exactly and
// is locale-independent (snprintf("%g")/strtod honor LC_NUMERIC, so a
// checkpoint written under the C locale would fail to resume inside a
// host program that set a comma-decimal locale). A resumed series folds
// the same bits as the uninterrupted run.
std::string format_value(double v) {
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  SFS_CHECK(ec == std::errc(), "double format failed");
  return std::string(buf, ptr);
}

bool parse_index(const std::string& s, std::size_t& out) {
  const char* first = s.data();
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last && !s.empty();
}

bool parse_value(const std::string& s, double& out) {
  if (s.empty()) return false;
  const char* last = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(s.data(), last, out);
  return ec == std::errc() && ptr == last;
}

std::vector<std::string> meta_row(const std::vector<std::size_t>& sizes,
                                  std::size_t reps, std::uint64_t seed) {
  return {kCkptMagic, kCkptVersion, std::to_string(seed),
          std::to_string(reps), join_sizes(sizes)};
}

// Restores completed cells from `path` into raw slots / the done mask.
// Returns true when the file existed with a valid meta row (the appender
// must not rewrite it).
bool load_checkpoint(const std::string& path,
                     const std::vector<std::size_t>& sizes, std::size_t reps,
                     std::uint64_t seed, ScalingSeries& series,
                     std::vector<char>& done) {
  std::ifstream in(path);
  if (!in) return false;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (lines.empty()) return false;

  std::vector<std::string> fields;
  SFS_REQUIRE(parse_csv_row(lines[0], fields) &&
                  fields == meta_row(sizes, reps, seed),
              "checkpoint file does not match this sweep "
              "(seed/reps/sizes differ): " +
                  path);

  for (std::size_t k = 1; k < lines.size(); ++k) {
    const bool is_last = k + 1 == lines.size();
    const bool parsed = parse_csv_row(lines[k], fields);
    // A row a previous resume repaired (torn fragment closed with a
    // ",torn" marker): junk by construction, skip it.
    if (parsed && !fields.empty() && fields.back() == "torn") continue;
    std::size_t i = 0;
    std::size_t n = 0;
    std::size_t rep = 0;
    double value = 0.0;
    const bool well_formed =
        parsed && fields.size() == 5 && fields[4] == kCkptEnd &&
        parse_index(fields[0], i) && parse_index(fields[1], n) &&
        parse_index(fields[2], rep) && parse_value(fields[3], value) &&
        i < sizes.size() && sizes[i] == n && rep < reps;
    if (!well_formed) {
      // The header row, or the one torn line an interrupted append may
      // leave at the very end.
      if (k == 1 && parsed && !fields.empty() && fields[0] == "size_index") {
        continue;
      }
      SFS_REQUIRE(is_last, "corrupt checkpoint row " + std::to_string(k) +
                               " in " + path);
      continue;
    }
    series.points[i].raw[rep] = value;
    done[i * reps + rep] = 1;
  }
  return true;
}

bool ends_with_newline(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in || in.tellg() <= 0) return true;  // empty: nothing to terminate
  in.seekg(-1, std::ios::end);
  char last = '\0';
  in.get(last);
  return last == '\n';
}

// Streams completed cells to the checkpoint file; shared by the workers.
class CheckpointWriter {
 public:
  CheckpointWriter(const std::string& path,
                   const std::vector<std::size_t>& sizes, std::size_t reps,
                   std::uint64_t seed, bool resumed)
      : out_(path, std::ios::app), path_(path) {
    SFS_REQUIRE(out_.good(), "cannot open checkpoint file: " + path);
    if (!resumed) {
      write_csv_row(out_, meta_row(sizes, reps, seed));
      write_csv_row(out_, {"size_index", "n", "rep", "value", kCkptEnd});
      out_.flush();
    } else if (!ends_with_newline(path)) {
      // The interrupted run died mid-row: close the torn fragment with a
      // ",torn" marker field so the first appended record does not fuse
      // with it, and so later loads can tell this repaired junk row from
      // genuine corruption (the loader skips rows ending in "torn").
      out_ << ",torn\n";
      out_.flush();
    }
  }

  void append(std::size_t i, std::size_t n, std::size_t rep, double value) {
    const base::MutexLock lock(mutex_);
    write_csv_row(out_, {std::to_string(i), std::to_string(n),
                         std::to_string(rep), format_value(value), kCkptEnd});
    out_.flush();  // whole rows only: a crash tears at most the last line
    // ofstream swallows I/O errors by default (badbit, no throw), so a
    // full disk would otherwise silently stop checkpointing for the rest
    // of a multi-hour run while the sweep exits 0 looking resumable.
    SFS_CHECK(out_.good(), "checkpoint write failed (I/O error or disk "
                           "full): " +
                               path_);
  }

 private:
  // The stream is written by the constructor (thread-safety analysis
  // exempts constructors — the object is not yet shared) and then only
  // through append(), under mutex_.
  base::Mutex mutex_;
  std::ofstream out_ SFS_GUARDED_BY(mutex_);
  std::string path_;
};

// ------------------------------------------------------------------ fold

// The shared fit domain and refit rule: OLS power law over the points
// whose mean is finite and positive. `included` (when non-null) receives
// the indices that entered the fit. Returns a default-constructed fit
// (count == 0, no fit) when fewer than two points qualify. fit_series and
// bootstrap_slope_ci's per-resample refit both route through here, so the
// bootstrap CI brackets exactly the statistic the series quotes
// (ci.point == fit.slope by construction, not by parallel maintenance of
// two filter copies).
stats::LinearFit fit_positive_means(std::span<const double> ns,
                                    std::span<const double> means,
                                    std::vector<std::size_t>* included) {
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < means.size(); ++i) {
    if (std::isfinite(means[i]) && means[i] > 0.0) {
      xs.push_back(ns[i]);
      ys.push_back(means[i]);
      idx.push_back(i);
    }
  }
  if (included) *included = std::move(idx);
  if (xs.size() < 2) return {};  // default-constructed: has_fit()==false
  return stats::fit_power_law(xs, ys);
}

// Fits series.fit / weighted_fit / excluded from the folded summaries.
void fit_series(ScalingSeries& series) {
  const std::vector<double> ns = series.sizes();
  const std::vector<double> means = series.means();
  std::vector<std::size_t> included;
  series.fit = fit_positive_means(ns, means, &included);

  std::size_t next = 0;
  for (std::size_t i = 0; i < series.points.size(); ++i) {
    if (next < included.size() && included[next] == i) {
      ++next;
    } else {
      series.excluded.push_back(series.points[i].n);
    }
  }
  if (included.size() < 2) return;

  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> rel_err;  // stderr(mean) / mean, per included point
  for (const std::size_t i : included) {
    xs.push_back(ns[i]);
    ys.push_back(means[i]);
    rel_err.push_back(series.points[i].summary.stderr_mean / means[i]);
  }

  // Delta method: Var(log m) ≈ Var(m)/m², so weight = 1/rel_err². Points
  // with no measured spread borrow the smallest positive relative error
  // (they are at least as precise); if no point has one the weights are
  // uniform and the weighted fit coincides with OLS.
  double min_rel = 0.0;
  for (const double r : rel_err) {
    if (r > 0.0 && (min_rel == 0.0 || r < min_rel)) min_rel = r;
  }
  std::vector<double> ws(rel_err.size(), 1.0);
  if (min_rel > 0.0) {
    for (std::size_t i = 0; i < rel_err.size(); ++i) {
      const double r = rel_err[i] > 0.0 ? rel_err[i] : min_rel;
      ws[i] = 1.0 / (r * r);
    }
  }
  series.weighted_fit = stats::fit_power_law_weighted(xs, ys, ws);
}

// Shared cell runner for the full and sharded entry points: restores
// checkpointed cells, enumerates the pending cells this shard owns in the
// flattened (i * reps + r) task order, and measures them. The returned
// series holds raw values only (no summaries/fit) — the unsharded path
// folds it, the sharded path discards it (the checkpoint is the output).
// Invoke: (n, cell_seed, worker) -> double, shared by the plain and
// scratch-aware overloads.
template <typename Invoke>
std::size_t run_scaling_cells(const std::vector<std::size_t>& sizes,
                              std::size_t reps, std::uint64_t seed,
                              const ScalingOptions& options,
                              std::size_t shard_index,
                              std::size_t shard_count, const Invoke& invoke,
                              ScalingSeries& series) {
  SFS_REQUIRE(!sizes.empty(), "empty size sweep");
  SFS_REQUIRE(reps >= 1, "need at least one replication");
  SFS_REQUIRE(shard_count >= 1, "need at least one shard");
  SFS_REQUIRE(shard_index < shard_count,
              "shard index " + std::to_string(shard_index) +
                  " out of range for " + std::to_string(shard_count) +
                  " shard(s)");
  series.points.resize(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    series.points[i].n = sizes[i];
    series.points[i].raw.resize(reps);
  }

  // Restore completed cells, then enumerate the cells still to measure.
  // Each cell's seed is a pure function of (i, r), so the remaining cells
  // see exactly the seeds an uninterrupted run would have handed them.
  std::vector<char> done(sizes.size() * reps, 0);
  std::unique_ptr<CheckpointWriter> checkpoint;
  if (!options.checkpoint_path.empty()) {
    const bool resumed = load_checkpoint(options.checkpoint_path, sizes, reps,
                                         seed, series, done);
    checkpoint = std::make_unique<CheckpointWriter>(
        options.checkpoint_path, sizes, reps, seed, resumed);
  }
  // Shard ownership is a pure function of the flattened task index, so k
  // shards partition exactly the cells one process would enumerate — no
  // overlap, no gaps, and per-cell seeds unchanged.
  std::vector<std::size_t> pending;
  pending.reserve(done.size() / shard_count + 1);
  for (std::size_t task = 0; task < done.size(); ++task) {
    if (!done[task] && task % shard_count == shard_index) {
      pending.push_back(task);
    }
  }

  // Fan the whole size x replication grid out at once: sizes near the top
  // of the sweep dominate the cost, so scheduling the grid dynamically
  // keeps workers busy across size boundaries. Each cell's seed depends
  // only on (i, r), and each cell writes its own slot, so the series is
  // identical for any thread count.
  parallel_for(pending.size(), options.threads,
               [&](std::size_t idx, std::size_t worker) {
                 const std::size_t task = pending[idx];
                 const std::size_t i = task / reps;
                 const std::size_t r = task % reps;
                 const double value = invoke(
                     sizes[i],
                     rng::audited_stream_seed(seed, size_stream(i), r),
                     worker);
                 series.points[i].raw[r] = value;
                 if (checkpoint) checkpoint->append(i, sizes[i], r, value);
               });
  return pending.size();
}

template <typename Invoke>
ScalingSeries measure_scaling_impl(const std::vector<std::size_t>& sizes,
                                   std::size_t reps, std::uint64_t seed,
                                   const ScalingOptions& options,
                                   const Invoke& invoke) {
  ScalingSeries series;
  (void)run_scaling_cells(sizes, reps, seed, options, /*shard_index=*/0,
                          /*shard_count=*/1, invoke, series);
  for (auto& point : series.points) {
    point.summary = stats::summarize(point.raw);
  }

  fit_series(series);
  // Only CI a slope that exists: without a usable point fit, quoting an
  // interval for the "exponent" would dress up a non-measurement.
  if (options.bootstrap_replicates > 0 && series.has_fit()) {
    series.slope_ci =
        bootstrap_slope_ci(series, options.bootstrap_replicates,
                           options.bootstrap_alpha, options.bootstrap_seed);
  }
  return series;
}

}  // namespace

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure,
    const ScalingOptions& options) {
  return measure_scaling_impl(
      sizes, reps, seed, options,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t) {
        return measure(n, cell_seed);
      });
}

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t,
                               gen::GenScratch&)>& measure,
    const ScalingOptions& options) {
  // One WorkerContext per worker (sim/worker_context.hpp) — the same
  // per-worker scratch state sim/sweep and search/QueryEngine use; this
  // harness only exercises its generator scratch.
  std::vector<WorkerContext> workers(resolve_worker_count(options.threads));
  return measure_scaling_impl(
      sizes, reps, seed, options,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t worker) {
        return measure(n, cell_seed, workers[worker].gen_scratch);
      });
}

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure,
    std::size_t threads) {
  ScalingOptions options;
  options.threads = threads;
  return measure_scaling(sizes, reps, seed, measure, options);
}

ScalingSeries measure_scaling(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t,
                               gen::GenScratch&)>& measure,
    std::size_t threads) {
  ScalingOptions options;
  options.threads = threads;
  return measure_scaling(sizes, reps, seed, measure, options);
}

namespace {

// Shared body of the sharded entry points: the checkpoint is mandatory
// (it IS the shard's output — without it the computed cells would be
// thrown away) and the raw series is discarded.
template <typename Invoke>
std::size_t measure_scaling_shard_impl(const std::vector<std::size_t>& sizes,
                                       std::size_t reps, std::uint64_t seed,
                                       const ScalingOptions& options,
                                       std::size_t shard_index,
                                       std::size_t shard_count,
                                       const Invoke& invoke) {
  SFS_REQUIRE(!options.checkpoint_path.empty(),
              "sharded sweeps require a checkpoint path: the per-shard "
              "checkpoint file is the shard's only output");
  ScalingSeries series;
  return run_scaling_cells(sizes, reps, seed, options, shard_index,
                           shard_count, invoke, series);
}

}  // namespace

std::size_t measure_scaling_shard(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t)>& measure,
    const ScalingOptions& options, std::size_t shard_index,
    std::size_t shard_count) {
  return measure_scaling_shard_impl(
      sizes, reps, seed, options, shard_index, shard_count,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t) {
        return measure(n, cell_seed);
      });
}

std::size_t measure_scaling_shard(
    const std::vector<std::size_t>& sizes, std::size_t reps,
    std::uint64_t seed,
    const std::function<double(std::size_t, std::uint64_t,
                               gen::GenScratch&)>& measure,
    const ScalingOptions& options, std::size_t shard_index,
    std::size_t shard_count) {
  std::vector<WorkerContext> workers(resolve_worker_count(options.threads));
  return measure_scaling_shard_impl(
      sizes, reps, seed, options, shard_index, shard_count,
      [&](std::size_t n, std::uint64_t cell_seed, std::size_t worker) {
        return measure(n, cell_seed, workers[worker].gen_scratch);
      });
}

std::size_t merge_checkpoints(const std::vector<std::string>& inputs,
                              const std::string& output) {
  SFS_REQUIRE(!inputs.empty(), "merge_checkpoints needs at least one input");
  std::vector<std::string> canonical_meta;
  std::size_t reps = 0;
  std::vector<std::size_t> sizes;
  // (size_index, rep) -> value string, byte-for-byte as a shard recorded
  // it — values are never re-parsed and re-formatted, so the merged file
  // replays the exact bits the shards measured. std::map keeps the output
  // sorted by (size_index, rep).
  std::map<std::pair<std::size_t, std::size_t>, std::string> cells;

  for (const std::string& path : inputs) {
    std::ifstream in(path);
    SFS_REQUIRE(in.good(), "cannot open shard checkpoint: " + path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines.push_back(line);
    }
    SFS_REQUIRE(!lines.empty(), "empty shard checkpoint: " + path);

    std::vector<std::string> fields;
    SFS_REQUIRE(parse_csv_row(lines[0], fields) && fields.size() == 5 &&
                    fields[0] == kCkptMagic && fields[1] == kCkptVersion,
                "not a scaling checkpoint: " + path);
    if (canonical_meta.empty()) {
      canonical_meta = fields;
      SFS_REQUIRE(parse_index(fields[3], reps) && reps >= 1,
                  "bad reps field in checkpoint meta: " + path);
      std::size_t start = 0;
      const std::string& joined = fields[4];
      while (start <= joined.size()) {
        const std::size_t sep = joined.find(';', start);
        const std::string token =
            joined.substr(start, sep == std::string::npos ? std::string::npos
                                                          : sep - start);
        std::size_t n = 0;
        SFS_REQUIRE(parse_index(token, n),
                    "bad sizes field in checkpoint meta: " + path);
        sizes.push_back(n);
        if (sep == std::string::npos) break;
        start = sep + 1;
      }
    } else {
      SFS_REQUIRE(fields == canonical_meta,
                  "shard checkpoints disagree on (seed, reps, sizes); "
                  "refusing to merge: " +
                      path);
    }

    for (std::size_t k = 1; k < lines.size(); ++k) {
      const bool is_last = k + 1 == lines.size();
      const bool parsed = parse_csv_row(lines[k], fields);
      if (parsed && !fields.empty() && fields.back() == "torn") continue;
      std::size_t i = 0;
      std::size_t n = 0;
      std::size_t rep = 0;
      double value = 0.0;
      const bool well_formed =
          parsed && fields.size() == 5 && fields[4] == kCkptEnd &&
          parse_index(fields[0], i) && parse_index(fields[1], n) &&
          parse_index(fields[2], rep) && parse_value(fields[3], value) &&
          i < sizes.size() && sizes[i] == n && rep < reps;
      if (!well_formed) {
        if (k == 1 && parsed && !fields.empty() && fields[0] == "size_index") {
          continue;
        }
        // Same tolerance as resume: rows are flushed whole, so only the
        // final line of a shard may be torn.
        SFS_REQUIRE(is_last, "corrupt checkpoint row " + std::to_string(k) +
                                 " in " + path);
        continue;
      }
      const auto [it, inserted] = cells.emplace(std::make_pair(i, rep),
                                                fields[3]);
      SFS_REQUIRE(inserted || it->second == fields[3],
                  "shards disagree on cell (size_index=" + std::to_string(i) +
                      ", rep=" + std::to_string(rep) + "): " + path);
    }
  }

  std::ofstream out(output, std::ios::trunc);
  SFS_REQUIRE(out.good(), "cannot open merged checkpoint for writing: " +
                              output);
  write_csv_row(out, canonical_meta);
  write_csv_row(out, {"size_index", "n", "rep", "value", kCkptEnd});
  for (const auto& [key, value] : cells) {
    write_csv_row(out, {std::to_string(key.first),
                        std::to_string(sizes[key.first]),
                        std::to_string(key.second), value, kCkptEnd});
  }
  out.flush();
  SFS_REQUIRE(out.good(), "merged checkpoint write failed: " + output);
  return cells.size();
}

stats::BootstrapCi bootstrap_slope_ci(const ScalingSeries& series,
                                      std::size_t replicates, double alpha,
                                      std::uint64_t seed) {
  SFS_REQUIRE(!series.points.empty(), "empty series");
  // Without this, a no-fit series (e.g. one usable point plus mixed-sign
  // reps elsewhere) could still yield a finite interval — individual
  // resamples can be fittable even when the series is not — which would
  // be an error bar around a slope the series declares unmeasured.
  SFS_REQUIRE(series.has_fit(),
              "bootstrap_slope_ci needs a series with a usable fit "
              "(has_fit()); an interval for a slope that does not exist "
              "is not a measurement");
  std::vector<std::vector<double>> groups;
  std::vector<double> ns;
  groups.reserve(series.points.size());
  ns.reserve(series.points.size());
  for (const auto& p : series.points) {
    SFS_REQUIRE(!p.raw.empty(), "series point has no raw replications");
    groups.push_back(p.raw);
    ns.push_back(static_cast<double>(p.n));
  }

  // Refit over the resampled means through the same fit_positive_means
  // domain rule as the main fit; a resample that leaves fewer than two
  // fittable points (or a collapsed grid) scores NaN and is dropped by
  // the grouped-bootstrap percentile machinery.
  const auto slope_of = [&ns](std::span<const std::vector<double>> gs) {
    std::vector<double> means;
    means.reserve(gs.size());
    for (const auto& g : gs) means.push_back(stats::summarize(g).mean);
    const auto fit = fit_positive_means(ns, means, nullptr);
    return fit.ok() ? fit.slope : std::nan("");
  };

  rng::Rng rng(seed);
  return stats::bootstrap_grouped_ci(groups, slope_of, replicates, alpha,
                                     rng);
}

std::vector<std::size_t> geometric_sizes(std::size_t lo, std::size_t hi,
                                         std::size_t count) {
  SFS_REQUIRE(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
  SFS_REQUIRE(count >= 2, "need at least two sizes");
  std::vector<std::size_t> sizes;
  const double ratio = std::pow(static_cast<double>(hi) / static_cast<double>(lo),
                                1.0 / static_cast<double>(count - 1));
  double x = static_cast<double>(lo);
  for (std::size_t i = 0; i < count; ++i) {
    // Clamp: after count-1 inexact multiplications the final x can land a
    // hair above hi, and an unclamped round-up would make the grid
    // overshoot — then the `!= hi` endpoint patch below would append a
    // SMALLER value and break monotonicity.
    auto v = static_cast<std::size_t>(std::llround(x));
    if (v > hi) v = hi;
    if (sizes.empty() || v > sizes.back()) sizes.push_back(v);
    x *= ratio;
  }
  if (sizes.back() != hi) sizes.push_back(hi);
  return sizes;
}

}  // namespace sfs::sim
