// Structured experiment reporting: the one place every experiment's
// results flow through, whether they end up as human tables, BENCH_JSON
// console lines (greppable perf trajectories), or a --json JSONL file.
//
// Subsumes the helpers that used to live header-only in
// bench/bench_util.hpp; promoted into sim/ so they are compiled library
// code shared by the unified driver (sim/experiment.hpp), testable, and
// available to examples.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/scaling.hpp"

namespace sfs::sim {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Unified structured-results emitter. Human-readable output (tables,
/// prose) goes to console(); every machine-readable result goes through
/// emit_object(), which writes a "BENCH_JSON {...}" line to the console
/// and, when a JSONL sink is open (--json <path>), the bare object line to
/// that file as well — so a perf pipeline can either grep the log or read
/// the file, and the two never disagree.
///
/// Threading: single-writer. Only the driver thread emits — replication
/// workers return values that the caller folds in index order and emits
/// after the join (the bit-identity contract forbids emission from inside
/// the fan-out anyway, since line order would then depend on scheduling).
/// Hence no mutex and no capability annotations here; see docs/ANALYSIS.md
/// ("Capability annotations").
class ResultsEmitter {
 public:
  /// Emits to `console` (defaults to std::cout); no JSONL file.
  explicit ResultsEmitter(std::ostream& console);
  ResultsEmitter();

  /// Opens `path` for JSONL output (truncating). Throws std::runtime_error
  /// when the file cannot be opened or a later write fails (a silently
  /// half-written results file is worse than a failed run).
  void open_jsonl(const std::string& path);

  [[nodiscard]] std::ostream& console() noexcept { return *console_; }

  /// Writes one JSON object line (the string must be a complete JSON
  /// object, e.g. from JsonObjectWriter::str()).
  void emit_object(const std::string& json_object);

  /// One per-point result line:
  ///   {"bench":...,"n":...,"reps":...,"mean":...,"stderr":...,"wall_s":...}
  /// Pass a negative `wall_seconds` when wall time was not measured
  /// (emitted as null).
  void emit_point(const std::string& name, std::size_t n, std::size_t reps,
                  double mean, double stderr_mean, double wall_seconds);

  /// The fitted-exponent companion line to the per-point records
  /// ("kind":"fit" with slope/CI fields, null when the series has no
  /// usable fit or no bootstrap CI).
  void emit_fit(const std::string& name, const ScalingSeries& series);

 private:
  std::ostream* console_;
  std::ofstream file_;
  bool has_file_ = false;
  std::string file_path_;
};

/// Prints a ScalingSeries as a table with a fitted-slope footer comparing
/// against a theoretical exponent, plus one emitted point line per sweep
/// entry (wall time unmeasured at this granularity) and one "fit" line.
/// Honors the no-fit contract: a series where has_fit() is false reports
/// "no usable fit" instead of quoting the meaningless default slope, and
/// points excluded from the fit are always listed.
void print_scaling(const std::string& title, const ScalingSeries& series,
                   const std::string& quantity, double theory_slope,
                   const std::string& theory_label, ResultsEmitter& emitter);

/// The shared grid/options plan of a large-n scaling run: geometric grid
/// to n = 2,097,152 (>= 2e6) with 3 reps and a 400-replicate bootstrap CI
/// — or a small smoke grid through the same code path when `quick` — with
/// optional checkpoint/resume. `threads` selects the replication fan-out
/// (0 = shared pool; measure lambdas must be thread-safe).
struct LargeRunPlan {
  std::vector<std::size_t> sizes;
  std::size_t reps = 0;
  ScalingOptions options;
};

[[nodiscard]] LargeRunPlan plan_large_run(bool quick,
                                          const std::string& checkpoint_path,
                                          std::size_t threads = 0);

/// Prints a finished large-run series plus the grid/wall footer, then
/// enforces the large-mode result contract: a usable exponent fit
/// (has_fit()) with a computed bootstrap CI. Returns the process exit
/// code — the contract failing is exit 1, so CI catches a sweep that
/// silently degraded into a non-measurement.
[[nodiscard]] int report_large_run(const std::string& title,
                                   const LargeRunPlan& plan,
                                   const ScalingSeries& series,
                                   const std::string& quantity,
                                   double theory_slope,
                                   const std::string& theory_label,
                                   double wall_seconds,
                                   ResultsEmitter& emitter);

}  // namespace sfs::sim
