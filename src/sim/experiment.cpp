#include "sim/experiment.hpp"

#include <algorithm>
#include <charconv>
#include <iostream>

#include "base/check.hpp"
#include "rng/random.hpp"
#include "rng/stream_audit.hpp"
#include "sim/table.hpp"

namespace sfs::sim {

namespace {

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Catalog order: family rank (e, a, m, then everything else), numeric
/// suffix within a family ("e2" before "e10"), name as tiebreak.
struct CatalogKey {
  int family = 3;
  std::uint64_t number = 0;
  std::string_view name;
};

CatalogKey catalog_key(std::string_view name) {
  CatalogKey key;
  key.name = name;
  if (name.size() >= 2) {
    switch (name[0]) {
      case 'e': key.family = 0; break;
      case 'a': key.family = 1; break;
      case 'm': key.family = 2; break;
      default: return key;
    }
    const auto digits = name.substr(1);
    const auto end = digits.data() + digits.size();
    const auto [ptr, ec] = std::from_chars(digits.data(), end, key.number);
    if (ec != std::errc{} || ptr != end) {
      key.family = 3;
      key.number = 0;
    }
  }
  return key;
}

bool catalog_less(const ExperimentSpec& a, const ExperimentSpec& b) {
  const CatalogKey ka = catalog_key(a.name);
  const CatalogKey kb = catalog_key(b.name);
  if (ka.family != kb.family) return ka.family < kb.family;
  if (ka.number != kb.number) return ka.number < kb.number;
  return ka.name < kb.name;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  int base = 10;
  std::size_t start = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    start = 2;
  }
  const char* first = text.data() + start;
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out, base);
  return ec == std::errc{} && ptr == last;
}

bool parse_size(const std::string& text, std::size_t& out) {
  std::uint64_t v = 0;
  if (!parse_u64(text, v)) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_size_list(const std::string& text, std::vector<std::size_t>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string tok =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    std::size_t v = 0;
    if (!parse_size(tok, v) || v == 0) return false;
    if (!out.empty() && v <= out.back()) return false;  // strictly increasing
    out.push_back(v);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

std::string flag_names(unsigned caps) {
  std::string out;
  const auto append = [&](unsigned bit, const char* name) {
    if (caps & bit) {
      if (!out.empty()) out += ' ';
      out += name;
    }
  };
  append(kCapQuick, "--quick");
  append(kCapLarge, "--large");
  append(kCapCheckpoint, "--checkpoint");
  append(kCapSizes, "--sizes/--n");
  append(kCapSingleSize, "--n");
  append(kCapReps, "--reps");
  append(kCapSeed, "--seed");
  append(kCapThreads, "--threads");
  append(kCapPolicies, "--policies");
  append(kCapShard, "--shard");
  append(kCapGbenchFlags, "--benchmark_*");
  if (!out.empty()) out += ' ';
  out += "--json";
  return out;
}

}  // namespace

bool parse_name_list(const std::string& text, std::vector<std::string>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    const std::string tok =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (tok.empty()) return false;
    out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return !out.empty();
}

std::uint64_t experiment_seed(std::string_view name) noexcept {
  return rng::mix64(fnv1a64(name));
}

std::uint64_t experiment_stream_seed(std::uint64_t base,
                                     std::string_view stream) {
  // Audited so that SFS_RNG_AUDIT=1 covers these name-derived streams —
  // the direct replacement for the hand-picked per-bench constants whose
  // aliasing the audit exists to catch — alongside the harness tags.
  return rng::audited_stream_seed(base, rng::mix64(fnv1a64(stream)),
                                  /*rep=*/0);
}

std::uint64_t ExperimentSpec::resolved_default_seed() const {
  return default_seed != 0 ? default_seed : experiment_seed(name);
}

std::uint64_t ExperimentContext::base_seed() const {
  return options.has_seed ? options.seed : spec->resolved_default_seed();
}

std::uint64_t ExperimentContext::stream_seed(std::string_view stream) const {
  return experiment_stream_seed(base_seed(), stream);
}

void ExperimentRegistry::add(ExperimentSpec spec) {
  SFS_REQUIRE(!spec.name.empty(), "experiment registration: empty name");
  SFS_REQUIRE(spec.run, "experiment registration: '" + spec.name +
                            "' has no run function");
  const std::uint64_t seed = spec.resolved_default_seed();
  for (const auto& existing : specs_) {
    SFS_REQUIRE(existing.name != spec.name,
                "experiment registration: duplicate name '" + spec.name + "'");
    SFS_REQUIRE(
        existing.resolved_default_seed() != seed,
        "experiment registration: '" + spec.name +
            "' resolves to the same default seed as '" + existing.name +
            "' — seeds must not collide (use distinct names / pinned seeds)");
  }
  specs_.push_back(std::move(spec));
}

const ExperimentSpec* ExperimentRegistry::find(std::string_view name) const {
  for (const auto& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ExperimentSpec*> ExperimentRegistry::all() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(&spec);
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return catalog_less(*a, *b);
            });
  return out;
}

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

ExperimentRegistrar::ExperimentRegistrar(ExperimentSpec spec) {
  ExperimentRegistry::instance().add(std::move(spec));
}

bool parse_experiment_cli(const std::vector<std::string>& args,
                          CliRequest& out, std::string& error) {
  out = CliRequest{};
  bool has_action = false;
  const auto value_of = [&](std::size_t& i, std::string& value) {
    if (i + 1 >= args.size()) {
      error = "flag " + args[i] + " requires a value";
      return false;
    }
    value = args[++i];
    return true;
  };
  // A repeated value flag silently overriding the earlier occurrence is
  // the argv-discarding bug class this parser exists to eliminate.
  const auto once = [&](bool already_set, const std::string& flag) {
    if (already_set) error = "flag " + flag + " given more than once";
    return !already_set;
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    std::string value;
    if (arg == "--list") {
      out.list = true;
      has_action = true;
    } else if (arg == "--list-names") {
      out.list_names = true;
      has_action = true;
    } else if (arg == "--run") {
      if (!once(!out.run_name.empty(), arg)) return false;
      if (!value_of(i, out.run_name)) return false;
      has_action = true;
    } else if (arg == "--quick") {
      out.options.quick = true;
    } else if (arg == "--large") {
      out.options.large = true;
    } else if (arg == "--sizes" || arg == "--n") {
      if (!once(!out.options.sizes.empty(), "--sizes/--n")) return false;
      if (!value_of(i, value)) return false;
      if (arg == "--n") {
        std::size_t n = 0;
        if (!parse_size(value, n) || n == 0) {
          error = "--n expects a positive integer, got '" + value + "'";
          return false;
        }
        out.options.sizes = {n};
      } else if (!parse_size_list(value, out.options.sizes)) {
        error = "--sizes expects a strictly increasing comma-separated "
                "list of positive integers, got '" +
                value + "'";
        return false;
      }
    } else if (arg == "--reps") {
      if (!once(out.options.reps > 0, arg)) return false;
      if (!value_of(i, value)) return false;
      if (!parse_size(value, out.options.reps) || out.options.reps == 0) {
        error = "--reps expects a positive integer, got '" + value + "'";
        return false;
      }
    } else if (arg == "--seed") {
      if (!once(out.options.has_seed, arg)) return false;
      if (!value_of(i, value)) return false;
      if (!parse_u64(value, out.options.seed)) {
        error = "--seed expects a decimal or 0x-hex integer, got '" + value +
                "'";
        return false;
      }
      out.options.has_seed = true;
    } else if (arg == "--threads") {
      if (!once(out.options.has_threads, arg)) return false;
      if (!value_of(i, value)) return false;
      if (!parse_size(value, out.options.threads)) {
        error = "--threads expects a non-negative integer (0 = shared "
                "pool), got '" +
                value + "'";
        return false;
      }
      out.options.has_threads = true;
    } else if (arg == "--policies") {
      if (!once(!out.options.policies.empty(), arg)) return false;
      if (!value_of(i, value)) return false;
      if (!parse_name_list(value, out.options.policies)) {
        error = "--policies expects a comma-separated list of policy "
                "names, got '" +
                value + "'";
        return false;
      }
    } else if (arg == "--shard") {
      if (!once(out.options.has_shard, arg)) return false;
      if (!value_of(i, value)) return false;
      const std::size_t slash = value.find('/');
      std::size_t index = 0;
      std::size_t count = 0;
      if (slash == std::string::npos ||
          !parse_size(value.substr(0, slash), index) ||
          !parse_size(value.substr(slash + 1), count) || count == 0 ||
          index >= count) {
        error = "--shard expects i/k with 0 <= i < k (e.g. --shard 0/2), "
                "got '" +
                value + "'";
        return false;
      }
      out.options.shard_index = index;
      out.options.shard_count = count;
      out.options.has_shard = true;
    } else if (arg == "--checkpoint") {
      if (!once(!out.options.checkpoint_path.empty(), arg)) return false;
      if (!value_of(i, out.options.checkpoint_path)) return false;
      if (out.options.checkpoint_path.empty()) {
        // An empty path reads back as "flag absent" — a script whose
        // $CKPT variable is unset would run a multi-hour grid with no
        // checkpointing and exit 0.
        error = "--checkpoint requires a non-empty path";
        return false;
      }
    } else if (arg == "--json") {
      if (!once(!out.options.json_path.empty(), arg)) return false;
      if (!value_of(i, out.options.json_path)) return false;
      if (out.options.json_path.empty()) {
        error = "--json requires a non-empty path";
        return false;
      }
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Opaque pass-through for the google-benchmark experiments;
      // validation rejects these unless the spec has kCapGbenchFlags.
      out.options.gbench_flags.push_back(arg);
    } else {
      error = "unknown flag: " + arg;
      return false;
    }
  }
  if (!has_action) {
    error = "one of --list, --list-names or --run <name> is required";
    return false;
  }
  if (out.list && out.list_names) {
    error = "--list and --list-names are mutually exclusive";
    return false;
  }
  if ((out.list || out.list_names) && !out.run_name.empty()) {
    error = "--list/--list-names cannot be combined with --run";
    return false;
  }
  return true;
}

bool validate_experiment_options(const ExperimentSpec& spec,
                                 const ExperimentOptions& options,
                                 std::string& error) {
  const auto reject = [&](const char* flag) {
    error = "experiment '" + spec.name + "' does not support " + flag +
            " (supported: " + flag_names(spec.caps) + ")";
    return false;
  };
  if (options.quick && !(spec.caps & kCapQuick)) return reject("--quick");
  if (options.large && !(spec.caps & kCapLarge)) return reject("--large");
  if (!options.checkpoint_path.empty() && !(spec.caps & kCapCheckpoint)) {
    return reject("--checkpoint");
  }
  if (!options.sizes.empty() &&
      !(spec.caps & (kCapSizes | kCapSingleSize))) {
    return reject("--sizes/--n");
  }
  // Single-size experiments take one n; silently running only part of a
  // requested size list would be the argv-discarding bug class this CLI
  // exists to eliminate.
  if (options.sizes.size() > 1 && !(spec.caps & kCapSizes)) {
    error = "experiment '" + spec.name +
            "' takes a single size (--n N), not a --sizes list";
    return false;
  }
  if (options.reps > 0 && !(spec.caps & kCapReps)) return reject("--reps");
  if (options.has_seed && !(spec.caps & kCapSeed)) return reject("--seed");
  if (options.has_threads && !(spec.caps & kCapThreads)) {
    return reject("--threads");
  }
  if (!options.policies.empty() && !(spec.caps & kCapPolicies)) {
    return reject("--policies");
  }
  if (!options.gbench_flags.empty() && !(spec.caps & kCapGbenchFlags)) {
    return reject(options.gbench_flags.front().c_str());
  }
  // Checkpointing streams sweep cells, which only the grid modes produce;
  // silently ignoring the flag elsewhere would run a sweep with no
  // checkpoint the user explicitly asked for (the generalized form of the
  // old "--quick/--checkpoint require --large" rule).
  if (!options.checkpoint_path.empty() && !options.large && !options.quick) {
    error = "experiment '" + spec.name +
            "': --checkpoint applies to the grid modes (pass --large or "
            "--quick)";
    return false;
  }
  if (options.has_shard) {
    if (!(spec.caps & kCapShard)) return reject("--shard");
    if (!options.large && !options.quick) {
      error = "experiment '" + spec.name +
              "': --shard applies to the grid modes (pass --large or "
              "--quick)";
      return false;
    }
    // A shard's only output is its checkpoint file; without one the
    // computed cells would be discarded and the run would exit 0 having
    // measured nothing durable.
    if (options.checkpoint_path.empty()) {
      error = "experiment '" + spec.name +
              "': --shard requires --checkpoint <path> (the per-shard "
              "checkpoint is the shard's output)";
      return false;
    }
  }
  return true;
}

void print_experiment_usage(std::ostream& out, const ExperimentSpec* spec) {
  out << "usage:\n"
         "  sfs_bench --list                 catalog of registered "
         "experiments\n"
         "  sfs_bench --list-names           bare experiment names, one per "
         "line\n"
         "  sfs_bench --run <name> [flags]   run one experiment\n"
         "flags: [--quick] [--large] [--sizes a,b,c | --n N] [--reps R]\n"
         "       [--seed S] [--threads T] [--policies a,b,c] [--shard i/k]\n"
         "       [--checkpoint <path>] [--json <path>]\n";
  if (spec != nullptr) {
    out << "\nexperiment '" << spec->name << "': " << spec->title << "\n"
        << "supported flags: " << flag_names(spec->caps) << "\n";
    if (!spec->params.empty()) {
      Table t("parameters", {"flag", "type", "default", "meaning"});
      for (const auto& p : spec->params) {
        t.row().cell(p.flag).cell(p.type).cell(p.default_value).cell(
            p.description);
      }
      t.print(out);
    }
  }
}

namespace {

int run_cli(const std::vector<std::string>& args) {
  CliRequest req;
  std::string error;
  if (!parse_experiment_cli(args, req, error)) {
    std::cerr << "error: " << error << "\n";
    print_experiment_usage(std::cerr, nullptr);
    return 2;
  }
  const auto& registry = ExperimentRegistry::instance();
  if (req.list_names) {
    for (const auto* spec : registry.all()) {
      std::cout << spec->name << "\n";
    }
    return 0;
  }
  if (req.list) {
    Table t("registered experiments (" + std::to_string(registry.size()) +
                ")",
            {"name", "title", "flags", "claim"});
    for (const auto* spec : registry.all()) {
      t.row()
          .cell(spec->name)
          .cell(spec->title)
          .cell(flag_names(spec->caps))
          .cell(spec->claim);
    }
    t.print(std::cout);
    std::cout << "\nrun one with: sfs_bench --run <name> [--quick] "
                 "[--json out.jsonl]\n";
    return 0;
  }
  const ExperimentSpec* spec = registry.find(req.run_name);
  if (spec == nullptr) {
    std::cerr << "error: unknown experiment '" << req.run_name
              << "' (see sfs_bench --list)\n";
    return 2;
  }
  if (!validate_experiment_options(*spec, req.options, error)) {
    std::cerr << "error: " << error << "\n";
    print_experiment_usage(std::cerr, spec);
    return 2;
  }
  ResultsEmitter emitter;
  try {
    if (!req.options.json_path.empty()) {
      emitter.open_jsonl(req.options.json_path);
    }
    ExperimentContext ctx{spec, req.options, &emitter};
    return spec->run(ctx);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int experiment_main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return run_cli(args);
}

int experiment_main_for(std::string_view name, int argc, char** argv) {
  std::vector<std::string> args{"--run", std::string(name)};
  args.insert(args.end(), argv + 1, argv + argc);
  return run_cli(args);
}

}  // namespace sfs::sim
