// Per-worker reusable scratch state shared by every replication harness.
//
// The parallel harnesses (sim/sweep, sim/scaling, search/QueryEngine) hand
// each worker thread a stable worker index and give it one WorkerContext:
// an epoch-stamped search workspace (O(1) reset between runs), a generator
// scratch arena, and a Graph whose CSR buffers are recycled across
// replications. Before this header, sweep.cpp and scaling.cpp each grew
// their own private per-worker struct; this is the one shared definition.
//
// A WorkerContext is bound to one worker thread at a time; it is not
// thread-safe and (like SearchWorkspace) not movable, so harnesses build
// their per-worker vectors with the count constructor
// (std::vector<WorkerContext> workers(n)) and never resize them.
#pragma once

#include "gen/scratch.hpp"
#include "graph/compressed.hpp"
#include "graph/graph.hpp"
#include "search/local_view.hpp"

namespace sfs::sim {

struct WorkerContext {
  /// Per-search state for the runner's workspace-reusing overloads.
  search::SearchWorkspace workspace;
  /// Generator arena for the scratch-taking gen/ overloads.
  gen::GenScratch gen_scratch;
  /// Graph slot recycled across replications (both the scratch-aware
  /// factories, which regenerate it in place, and the plain factories,
  /// which park their result here so callers get a stable reference).
  graph::Graph graph;
  /// Row decode scratch for workloads reading a CompressedGraph or an
  /// mmap'd snapshot (graph/compressed.hpp): one buffer per worker keeps
  /// compressed-row iteration zero-alloc past the high-water degree.
  graph::AdjacencyDecodeBuffer decode_buffer;

  WorkerContext() = default;
  WorkerContext(const WorkerContext&) = delete;
  WorkerContext& operator=(const WorkerContext&) = delete;
};

}  // namespace sfs::sim
