// Lightweight precondition / invariant checking used across all sfsearch
// libraries.
//
// Policy (see DESIGN.md §7): public API entry points validate their
// preconditions with SFS_REQUIRE, which throws std::invalid_argument so that
// misuse is diagnosable in release builds; internal invariants use
// SFS_CHECK, which throws std::logic_error. Neither is compiled out: the
// library is a research instrument and silent corruption of an experiment is
// worse than the (negligible) branch cost.
#pragma once

#include <cstddef>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace sfs::detail {

[[noreturn]] inline void throw_require_failure(const char* expr,
                                               const char* file, int line,
                                               const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_check_failure(const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace sfs::detail

// Validates a caller-facing precondition; throws std::invalid_argument.
#define SFS_REQUIRE(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sfs::detail::throw_require_failure(#expr, __FILE__, __LINE__,   \
                                           std::string(msg));           \
  } while (false)

namespace sfs {

/// a * b with wrap-around detection; throws std::invalid_argument (tagged
/// with `context`) instead of silently wrapping. Used for size arithmetic
/// that feeds reserve()/resize() calls, where a wrapped product would
/// either under-reserve or pass a bogus "fits" check.
[[nodiscard]] inline std::size_t checked_mul(std::size_t a, std::size_t b,
                                             const char* context) {
  if (b != 0 && a > std::numeric_limits<std::size_t>::max() / b) {
    detail::throw_require_failure("a * b does not overflow", __FILE__,
                                  __LINE__, std::string(context));
  }
  return a * b;
}

/// a + b with wrap-around detection; throws std::invalid_argument.
[[nodiscard]] inline std::size_t checked_add(std::size_t a, std::size_t b,
                                             const char* context) {
  if (a > std::numeric_limits<std::size_t>::max() - b) {
    detail::throw_require_failure("a + b does not overflow", __FILE__,
                                  __LINE__, std::string(context));
  }
  return a + b;
}

}  // namespace sfs

// Validates an internal invariant; throws std::logic_error.
#define SFS_CHECK(expr, msg)                                            \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sfs::detail::throw_check_failure(#expr, __FILE__, __LINE__,     \
                                         std::string(msg));             \
  } while (false)
