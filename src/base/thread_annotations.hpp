// Clang thread-safety (capability) annotation macros.
//
// The repo's concurrency story is small and deliberate: a fixed-size
// thread pool with deterministic result slots (base/parallel.hpp), a
// process-wide collision-detecting RNG audit (rng/stream_audit.hpp), a
// checkpoint writer shared by sweep workers (sim/scaling.cpp), and a set
// of single-writer classes whose "lock" is a protocol, not a mutex
// (graph::Overlay, search::QueryEngine, sim::ResultsEmitter). The
// mutex-holding classes carry these annotations so clang's
// -Wthread-safety analysis proves, at compile time and on every build of
// the `analyze` CI job, that each guarded member is only touched with its
// capability held. The protocol-guarded classes document their contract
// in docs/ANALYSIS.md ("Capability annotations") and are cross-checked
// dynamically by the tsan CI job.
//
// On non-clang compilers (the container's g++ included) every macro
// expands to nothing, so the annotations are free and the tree builds
// identically. Use the SFS_-prefixed macros only; never spell the
// attributes directly (the macros are the one place the clang gate
// lives).
//
// The vocabulary mirrors the standard capability set (see the clang
// Thread Safety Analysis docs and abseil's thread_annotations.h, from
// which this macro shape is the de-facto idiom):
//
//   SFS_CAPABILITY("mutex")    class declares a capability
//   SFS_SCOPED_CAPABILITY     RAII class that acquires/releases one
//   SFS_GUARDED_BY(mu)        member readable/writable only holding mu
//   SFS_PT_GUARDED_BY(mu)     pointee guarded by mu
//   SFS_REQUIRES(mu)          function body runs with mu held
//   SFS_ACQUIRE(mu)/SFS_RELEASE(mu)  function acquires/releases mu
//   SFS_TRY_ACQUIRE(ok, mu)   conditional acquire, `ok` on success
//   SFS_EXCLUDES(mu)          function must NOT be entered holding mu
//   SFS_ACQUIRED_BEFORE/AFTER declared lock-ordering edges
//   SFS_ASSERT_CAPABILITY(mu) runtime assertion that mu is held
//   SFS_RETURN_CAPABILITY(mu) accessor returning the guarding capability
//   SFS_NO_THREAD_SAFETY_ANALYSIS  opt a function body out (last resort;
//                             every use needs an SFS_LINT_ALLOW-grade
//                             justification in a comment)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SFS_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SFS_THREAD_ANNOTATION
#define SFS_THREAD_ANNOTATION(x)  // no-op off clang
#endif

#define SFS_CAPABILITY(x) SFS_THREAD_ANNOTATION(capability(x))
#define SFS_SCOPED_CAPABILITY SFS_THREAD_ANNOTATION(scoped_lockable)
#define SFS_GUARDED_BY(x) SFS_THREAD_ANNOTATION(guarded_by(x))
#define SFS_PT_GUARDED_BY(x) SFS_THREAD_ANNOTATION(pt_guarded_by(x))
#define SFS_ACQUIRED_BEFORE(...) \
  SFS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SFS_ACQUIRED_AFTER(...) \
  SFS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SFS_REQUIRES(...) \
  SFS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SFS_REQUIRES_SHARED(...) \
  SFS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SFS_ACQUIRE(...) \
  SFS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SFS_ACQUIRE_SHARED(...) \
  SFS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SFS_RELEASE(...) \
  SFS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SFS_RELEASE_SHARED(...) \
  SFS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SFS_TRY_ACQUIRE(...) \
  SFS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SFS_EXCLUDES(...) SFS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SFS_ASSERT_CAPABILITY(x) SFS_THREAD_ANNOTATION(assert_capability(x))
#define SFS_RETURN_CAPABILITY(x) SFS_THREAD_ANNOTATION(lock_returned(x))
#define SFS_NO_THREAD_SAFETY_ANALYSIS \
  SFS_THREAD_ANNOTATION(no_thread_safety_analysis)
