// Capability-annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so
// annotating a member SFS_GUARDED_BY(mu) over a raw std::mutex would
// make clang's analysis report every access as unguarded (it never sees
// an acquire). This header wraps the std primitives in the thinnest
// possible annotated shells — the standard workaround every annotated
// codebase ships (abseil's Mutex, chromium's base::Lock). All locking in
// src/ goes through these types; the analyze CI job builds the tree with
// -Wthread-safety promoted to an error, so a guarded member touched
// without its mutex is a compile failure, not a TSan lottery ticket.
//
// Condition variables: Mutex is a BasicLockable (annotated lock/unlock),
// so std::condition_variable_any waits on it directly. Use the
// Mutex::wait member — its SFS_REQUIRES(this) annotation makes "you must
// hold the mutex to wait on it" a compile-time contract — and re-check
// the predicate in a while loop at the call site (plain condvar
// discipline; the predicate reads guarded state, which the analysis then
// verifies happens under the lock).
#pragma once

#include <condition_variable>
#include <mutex>

#include "base/thread_annotations.hpp"

namespace sfs::base {

/// Annotated std::mutex. Non-recursive, non-copyable.
class SFS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SFS_ACQUIRE() { mu_.lock(); }
  void unlock() SFS_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SFS_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

  /// Atomically releases this mutex, blocks on `cv`, and reacquires the
  /// mutex before returning. The caller must hold the mutex and must
  /// re-check its predicate afterwards (spurious wakeups).
  void wait(std::condition_variable_any& cv) SFS_REQUIRES(this) {
    cv.wait(*this);
  }

 private:
  std::mutex mu_;
};

/// Annotated scoped lock over Mutex (the lock_guard shape; no deferred /
/// adoptable modes — the tree does not need them, and fewer modes means
/// fewer annotation states the analysis must model).
class SFS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SFS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SFS_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace sfs::base
