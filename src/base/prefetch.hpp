// Portable software-prefetch hint.
//
// The search inner loops stream through CSR spans whose per-slot work is a
// handful of cycles, so the dependent random accesses (stamp arrays indexed
// by edge/vertex id) dominate wall time once the graph outgrows L2.
// Prefetching those lines a few slots ahead overlaps the misses with useful
// work. A hint only — correctness never depends on it, and unknown
// compilers get a no-op.
#pragma once

namespace sfs::base {

inline void prefetch(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr);
#else
  (void)addr;
#endif
}

}  // namespace sfs::base
