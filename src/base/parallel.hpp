// Deterministic parallel replication executor.
//
// The Monte-Carlo harnesses (sim/sweep, sim/scaling) run hundreds of
// independent replications whose seeds are derived per replication index
// (rng::derive_seed(seed, rep)), so the computation of replication r never
// depends on any other replication. That makes the fan-out embarrassingly
// parallel AND bit-reproducible: each task writes its results into a slot
// indexed by its replication number, and the caller folds the slots in
// index order afterwards — identical floating-point accumulation order to
// the sequential loop, hence bit-identical summaries regardless of thread
// count or OS scheduling.
//
// The pool hands every task a stable worker index in [0, worker_count()),
// which callers use to give each worker its own reusable scratch state
// (e.g. one search::SearchWorkspace per worker).
//
// Lives in base/ (not sim/) because it is domain-free infrastructure that
// lower layers — search::QueryEngine's batch fan-out in particular — are
// allowed to depend on under the include-layering DAG
// base→rng→graph→gen→stats→search→sim→core enforced by sfs_lint R8
// (docs/ANALYSIS.md). sim/parallel.hpp remains as a compatibility shim
// aliasing these names into sfs::sim. The pool's internal state carries
// clang thread-safety annotations (base/thread_annotations.hpp), checked
// by the analyze CI job.
#pragma once

#include <cstddef>
#include <functional>

namespace sfs::base {

/// Worker count used when a caller passes `threads == 0`: the value of the
/// SFS_THREADS environment variable if set and positive, otherwise
/// std::thread::hardware_concurrency() (at least 1).
[[nodiscard]] std::size_t default_worker_count();

/// A small fixed-size thread pool. The calling thread participates as
/// worker 0, so a pool of `workers` uses `workers - 1` background threads;
/// `ThreadPool(1)` degenerates to a plain sequential loop with no threads
/// and no synchronization.
///
/// parallel_for issues tasks through a shared atomic counter (dynamic
/// scheduling — replication costs are heavy-tailed, so static blocking
/// would leave workers idle). Nested parallel_for calls from inside a task
/// execute inline on the calling worker, so harnesses can compose (a
/// scaling sweep whose measure function itself runs a portfolio) without
/// deadlock or thread explosion.
class ThreadPool {
 public:
  /// `workers == 0` selects default_worker_count().
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const noexcept;

  /// Runs fn(task, worker) for every task in [0, count), then returns.
  /// `worker` is stable within one task and < worker_count(). Exceptions
  /// thrown by tasks are captured; the first one (in completion order) is
  /// rethrown on the calling thread after all workers quiesce. Once a task
  /// throws, remaining unclaimed tasks are cancelled (never run), so on
  /// exceptional exit per-task result slots may be only partially written
  /// — cleanup code must not assume every task executed.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t task,
                                             std::size_t worker)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide shared pool (lazily constructed with the default
/// worker count). The replication harnesses use this unless handed an
/// explicit thread count.
[[nodiscard]] ThreadPool& shared_pool();

/// Convenience: run `fn` over [0, count) on `threads` workers (0 = the
/// shared pool at its default size; 1 = inline sequential loop).
void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t task,
                                           std::size_t worker)>& fn);

/// Number of workers parallel_for(count, threads, fn) will hand out worker
/// indices for — what harnesses must size per-worker scratch vectors to
/// (threads == 0 maps to the shared pool's worker count).
[[nodiscard]] std::size_t resolve_worker_count(std::size_t threads);

}  // namespace sfs::base
