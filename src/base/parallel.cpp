#include "base/parallel.hpp"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <thread>
#include <vector>

#include "base/sync.hpp"
#include "base/thread_annotations.hpp"

namespace sfs::base {

namespace {

/// True while the current thread is executing a pool task; nested
/// parallel_for calls detect this and run inline.
thread_local bool t_inside_pool_task = false;

}  // namespace

std::size_t default_worker_count() {
  if (const char* env = std::getenv("SFS_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Out-of-range values (strtol clamps to LONG_MAX/LONG_MIN with ERANGE)
    // fall back to hardware concurrency like any other garbage.
    if (end != env && *end == '\0' && errno == 0 && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ThreadPool::Impl {
  using Fn = std::function<void(std::size_t, std::size_t)>;

  std::size_t workers = 1;          // total, including the calling thread
  std::vector<std::thread> threads;  // workers - 1 background threads

  /// Serializes concurrent external parallel_for calls. Always taken
  /// before mu (declared ordering, so the analysis rejects an inverted
  /// acquisition if one is ever written).
  Mutex call_mu SFS_ACQUIRED_BEFORE(mu);

  Mutex mu;
  std::condition_variable_any job_cv;   // background workers wait for a job
  std::condition_variable_any done_cv;  // the caller waits for quiescence
  std::uint64_t generation SFS_GUARDED_BY(mu) = 0;
  bool stop SFS_GUARDED_BY(mu) = false;

  // Current job. Written by the caller under mu before bumping generation;
  // workers snapshot (fn, count) under mu when they wake for a generation,
  // then run off their local copies — every access to these members is
  // under mu, which is exactly what the annotations prove. (Before the
  // annotation pass, workers re-read fn/count lock-free mid-job, relying
  // on a subtler happens-before argument via the generation handshake —
  // correct, but invisible to any analysis. See docs/ANALYSIS.md,
  // "Capability annotations".)
  const Fn* fn SFS_GUARDED_BY(mu) = nullptr;
  std::size_t count SFS_GUARDED_BY(mu) = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::size_t active SFS_GUARDED_BY(mu) = 0;  // workers still inside the job
  std::exception_ptr error SFS_GUARDED_BY(mu);

  /// Claims tasks off the shared counter until the job is drained. Runs
  /// unlocked; `job_fn`/`job_count` are the caller's under-mu snapshot.
  void run_tasks(std::size_t worker, const Fn& job_fn, std::size_t job_count)
      SFS_EXCLUDES(mu) {
    const bool was_inside = t_inside_pool_task;
    t_inside_pool_task = true;
    for (;;) {
      const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
      if (task >= job_count) break;
      if (cancelled.load(std::memory_order_relaxed)) continue;  // drain
      try {
        job_fn(task, worker);
      } catch (...) {
        const MutexLock lk(mu);
        if (!error) error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
      }
    }
    t_inside_pool_task = was_inside;
  }

  void worker_loop(std::size_t worker) SFS_EXCLUDES(mu) {
    std::uint64_t seen = 0;
    for (;;) {
      const Fn* job_fn = nullptr;
      std::size_t job_count = 0;
      {
        const MutexLock lk(mu);
        while (!stop && generation == seen) mu.wait(job_cv);
        if (stop) return;
        seen = generation;
        job_fn = fn;
        job_count = count;
      }
      run_tasks(worker, *job_fn, job_count);
      {
        const MutexLock lk(mu);
        if (--active == 0) done_cv.notify_all();
      }
    }
  }

  /// Stops and joins the background threads. Safe with any subset of the
  /// requested threads actually spawned (partial construction).
  void shutdown() SFS_EXCLUDES(mu) {
    {
      const MutexLock lk(mu);
      stop = true;
    }
    job_cv.notify_all();
    for (auto& t : threads) t.join();
  }
};

ThreadPool::ThreadPool(std::size_t workers) : impl_(new Impl) {
  impl_->workers = workers == 0 ? default_worker_count() : workers;
  try {
    impl_->threads.reserve(impl_->workers - 1);
    for (std::size_t w = 1; w < impl_->workers; ++w) {
      impl_->threads.emplace_back([this, w] { impl_->worker_loop(w); });
    }
  } catch (...) {
    // A std::thread failed to spawn (resource limit): the destructor will
    // not run for a half-constructed object, so stop and join the workers
    // that did start before letting the exception propagate.
    impl_->shutdown();
    delete impl_;
    // SFS_LINT_ALLOW(check-discipline): bare rethrow after cleanup must re-propagate the original exception, which no SFS_* macro can do
    throw;
  }
}

ThreadPool::~ThreadPool() {
  impl_->shutdown();
  delete impl_;
}

std::size_t ThreadPool::worker_count() const noexcept {
  return impl_->workers;
}

void ThreadPool::parallel_for(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  // Nested fan-out (a pool task that itself replicates) runs inline on the
  // current thread: its sub-tasks all see worker index 0 of the nested
  // call, which is safe because the nested call's scratch state is local
  // to this thread's call frame.
  if (t_inside_pool_task || impl_->workers == 1) {
    for (std::size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }

  const MutexLock call_lock(impl_->call_mu);
  {
    const MutexLock lk(impl_->mu);
    impl_->fn = &fn;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->cancelled.store(false, std::memory_order_relaxed);
    impl_->active = impl_->threads.size();
    impl_->error = nullptr;
    ++impl_->generation;
  }
  impl_->job_cv.notify_all();

  impl_->run_tasks(0, fn, count);  // the caller is worker 0

  std::exception_ptr err;
  {
    const MutexLock lk(impl_->mu);
    while (impl_->active != 0) impl_->mu.wait(impl_->done_cv);
    err = impl_->error;
    impl_->error = nullptr;
    impl_->fn = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t count, std::size_t threads,
                  const std::function<void(std::size_t, std::size_t)>& fn) {
  // Nested calls run inline anyway — don't spawn a pool whose threads
  // would never execute a task.
  if (threads == 1 || t_inside_pool_task) {
    for (std::size_t task = 0; task < count; ++task) fn(task, 0);
    return;
  }
  if (threads == 0) {
    shared_pool().parallel_for(count, fn);
    return;
  }
  ThreadPool pool(threads);
  pool.parallel_for(count, fn);
}

std::size_t resolve_worker_count(std::size_t threads) {
  return threads == 0 ? shared_pool().worker_count() : threads;
}

}  // namespace sfs::base
