#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include "base/check.hpp"

namespace sfs::stats {

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  SFS_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  SFS_REQUIRE(xs.size() >= 2, "need at least two points to fit a line");
  const auto n = static_cast<double>(xs.size());

  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  SFS_REQUIRE(sxx > 0.0, "x values are all equal; slope undefined");

  LinearFit fit;
  fit.count = xs.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  // Residual variance and derived diagnostics.
  double ssr = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - fit.at(xs[i]);
    ssr += r * r;
  }
  if (syy > 0.0) fit.r_squared = 1.0 - ssr / syy;
  if (xs.size() > 2) {
    const double sigma2 = ssr / (n - 2.0);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  SFS_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  std::vector<double> lx;
  std::vector<double> ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SFS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                "fit_power_law needs strictly positive data");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  return fit_line(lx, ly);
}

}  // namespace sfs::stats
