#include "stats/regression.hpp"

#include <cmath>
#include <vector>

#include "base/check.hpp"

namespace sfs::stats {

namespace {

// Shared weighted-OLS core: fit_line is the weights-all-one special case.
// Weight-0 points are excluded from every sum (and from `count`).
LinearFit fit_core(std::span<const double> xs, std::span<const double> ys,
                   const double* weights) {
  SFS_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  SFS_REQUIRE(xs.size() >= 2, "need at least two points to fit a line");

  double sw = 0.0;
  double sx = 0.0;
  double sy = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights ? weights[i] : 1.0;
    SFS_REQUIRE(std::isfinite(w) && w >= 0.0,
                "weights must be finite and non-negative");
    if (w == 0.0) continue;
    sw += w;
    sx += w * xs[i];
    sy += w * ys[i];
    ++used;
  }
  SFS_REQUIRE(sw > 0.0, "total weight must be positive");

  LinearFit fit;
  fit.count = used;
  const double mx = sx / sw;
  const double my = sy / sw;
  if (used < 2) {
    fit.degenerate = true;
    fit.intercept = my;
    return fit;
  }

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights ? weights[i] : 1.0;
    if (w == 0.0) continue;
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += w * dx * dx;
    sxy += w * dx * dy;
    syy += w * dy * dy;
  }
  if (!(sxx > 0.0)) {
    // All (positive-weight) x collapsed onto one value: the slope is
    // undefined. Flag instead of throwing so a sweep whose size grid
    // rounded to a single point degrades to "no fit", not an abort.
    fit.degenerate = true;
    fit.intercept = my;
    return fit;
  }

  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  // Residual variance and derived diagnostics.
  double ssr = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double w = weights ? weights[i] : 1.0;
    if (w == 0.0) continue;
    const double r = ys[i] - fit.at(xs[i]);
    ssr += w * r * r;
  }
  if (syy > 0.0) fit.r_squared = 1.0 - ssr / syy;
  if (used > 2) {
    const double sigma2 = ssr / (static_cast<double>(used) - 2.0);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

void log_transform(std::span<const double> xs, std::span<const double> ys,
                   std::vector<double>& lx, std::vector<double>& ly) {
  SFS_REQUIRE(xs.size() == ys.size(), "x/y size mismatch");
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    SFS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                "fit_power_law needs strictly positive data");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
}

}  // namespace

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  return fit_core(xs, ys, nullptr);
}

LinearFit fit_line_weighted(std::span<const double> xs,
                            std::span<const double> ys,
                            std::span<const double> weights) {
  SFS_REQUIRE(weights.size() == xs.size(), "x/weight size mismatch");
  return fit_core(xs, ys, weights.data());
}

LinearFit fit_power_law(std::span<const double> xs,
                        std::span<const double> ys) {
  std::vector<double> lx;
  std::vector<double> ly;
  log_transform(xs, ys, lx, ly);
  return fit_line(lx, ly);
}

LinearFit fit_power_law_weighted(std::span<const double> xs,
                                 std::span<const double> ys,
                                 std::span<const double> weights) {
  std::vector<double> lx;
  std::vector<double> ly;
  log_transform(xs, ys, lx, ly);
  return fit_line_weighted(lx, ly, weights);
}

}  // namespace sfs::stats
