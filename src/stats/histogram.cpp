#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace sfs::stats {

void IntHistogram::add(std::uint64_t value, std::uint64_t count) {
  if (value >= bins_.size()) bins_.resize(value + 1, 0);
  bins_[value] += count;
  total_ += count;
}

std::uint64_t IntHistogram::count(std::uint64_t value) const noexcept {
  return value < bins_.size() ? bins_[value] : 0;
}

std::uint64_t IntHistogram::max_value() const noexcept {
  for (std::size_t i = bins_.size(); i-- > 0;) {
    if (bins_[i] > 0) return i;
  }
  return 0;
}

double IntHistogram::pmf(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double IntHistogram::ccdf(std::uint64_t value) const noexcept {
  if (total_ == 0) return 0.0;
  std::uint64_t at_least = 0;
  for (std::size_t i = static_cast<std::size_t>(value); i < bins_.size(); ++i)
    at_least += bins_[i];
  return static_cast<double>(at_least) / static_cast<double>(total_);
}

std::vector<LogBin> log_binned(std::span<const std::size_t> values,
                               double base) {
  SFS_REQUIRE(base > 1.0, "log binning needs base > 1");
  std::vector<LogBin> bins;
  if (values.empty()) return bins;
  std::size_t vmax = 0;
  for (const std::size_t v : values) {
    SFS_REQUIRE(v > 0, "log binning needs strictly positive values");
    vmax = std::max(vmax, v);
  }
  // Build bin edges b^0, b^1, ... rounded to distinct integers.
  std::vector<std::uint64_t> edges{1};
  double edge = 1.0;
  while (edges.back() <= vmax) {
    edge *= base;
    const auto next = static_cast<std::uint64_t>(std::ceil(edge));
    if (next > edges.back()) edges.push_back(next);
  }
  bins.resize(edges.size() - 1);
  for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
    bins[i].lo = edges[i];
    bins[i].hi = edges[i + 1];
    bins[i].center = std::sqrt(static_cast<double>(edges[i]) *
                               static_cast<double>(edges[i + 1] - 1));
  }
  for (const std::size_t v : values) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), v);
    const auto idx = static_cast<std::size_t>(it - edges.begin()) - 1;
    ++bins[idx].count;
  }
  const double total = static_cast<double>(values.size());
  for (LogBin& b : bins) {
    const double width = static_cast<double>(b.hi - b.lo);
    b.density = static_cast<double>(b.count) / (total * width);
  }
  return bins;
}

}  // namespace sfs::stats
