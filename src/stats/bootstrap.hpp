// Nonparametric bootstrap confidence intervals.
//
// Experiments report bootstrap CIs for derived statistics (e.g. fitted
// scaling exponents) where the normal approximation is dubious.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "rng/random.hpp"

namespace sfs::stats {

/// Percentile bootstrap interval for an arbitrary statistic of a sample.
struct BootstrapCi {
  double point = 0.0;  // statistic on the original sample
  double lo = 0.0;     // lower percentile bound
  double hi = 0.0;     // upper percentile bound
  std::size_t replicates = 0;
};

/// Computes the statistic on `replicates` resamples (with replacement) of
/// `data` and returns the [alpha/2, 1-alpha/2] percentile interval.
/// `statistic` must accept any non-empty sample of the same size.
[[nodiscard]] BootstrapCi bootstrap_ci(
    std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double alpha, rng::Rng& rng);

/// Convenience: bootstrap CI of the sample mean.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> data,
                                            std::size_t replicates,
                                            double alpha, rng::Rng& rng);

/// Stratified (group-wise) percentile bootstrap for statistics of grouped
/// data — e.g. a scaling exponent fitted over per-size replication
/// samples, where resampling must respect the grouping (resample
/// replications *within* each size, never mix sizes). Each group is
/// resampled with replacement independently, preserving its size, and
/// `statistic` maps the resampled groups to a scalar.
///
/// `statistic` may return a non-finite value for a resample it cannot
/// score (e.g. too few usable groups left to fit a slope); such
/// replicates are dropped from the percentile computation and the
/// returned `replicates` field counts only the finite ones. When fewer
/// than 2 replicates are finite, the interval collapses to
/// [point, point] with replicates == 0.
[[nodiscard]] BootstrapCi bootstrap_grouped_ci(
    std::span<const std::vector<double>> groups,
    const std::function<double(std::span<const std::vector<double>>)>&
        statistic,
    std::size_t replicates, double alpha, rng::Rng& rng);

}  // namespace sfs::stats
