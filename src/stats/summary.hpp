// Summary statistics for replicated measurements.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sfs::stats {

/// Mean, variance, extremes and confidence half-width of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;   // unbiased (n-1) sample variance
  double stddev = 0.0;
  double stderr_mean = 0.0;  // stddev / sqrt(n)
  double min = 0.0;
  double max = 0.0;

  /// Half-width of the normal-approximation 95% confidence interval for the
  /// mean (1.96 * stderr). Zero for n < 2.
  [[nodiscard]] double ci95_halfwidth() const noexcept {
    return 1.96 * stderr_mean;
  }
};

/// Computes all Summary fields in one pass (Welford). Empty input gives an
/// all-zero summary with count == 0.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// q-th sample quantile (0 <= q <= 1) with linear interpolation; the input
/// need not be sorted (a sorted copy is made).
[[nodiscard]] double quantile(std::span<const double> xs, double q);

/// Same interpolation over an already ascending-sorted sample — no copy,
/// no sort. Lets callers that need several quantiles of one sample sort
/// once and read them all (see the portfolio fold in sim/sweep.cpp).
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Median (quantile 0.5).
[[nodiscard]] double median(std::span<const double> xs);

/// Online accumulator for streaming summaries (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] Summary summary() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sfs::stats
