#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace sfs::stats {

void Accumulator::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

Summary Accumulator::summary() const noexcept {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean_;
  s.min = min_;
  s.max = max_;
  if (count_ >= 2) {
    s.variance = m2_ / static_cast<double>(count_ - 1);
    s.stddev = std::sqrt(s.variance);
    s.stderr_mean = s.stddev / std::sqrt(static_cast<double>(count_));
  }
  return s;
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  return acc.summary();
}

double quantile(std::span<const double> xs, double q) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

double quantile_sorted(std::span<const double> sorted, double q) {
  SFS_REQUIRE(!sorted.empty(), "quantile of empty sample");
  SFS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

}  // namespace sfs::stats
