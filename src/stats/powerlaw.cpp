#include "stats/powerlaw.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"

namespace sfs::stats {
namespace {

constexpr double kAlphaLo = 1.0 + 1e-6;
constexpr double kAlphaHi = 25.0;

/// Sorted copy of the tail data (values >= xmin).
std::vector<std::size_t> tail_of(std::span<const std::size_t> data,
                                 std::size_t xmin) {
  std::vector<std::size_t> tail;
  for (const std::size_t x : data) {
    if (x >= xmin) tail.push_back(x);
  }
  std::sort(tail.begin(), tail.end());
  return tail;
}

/// Mean log-likelihood (up to a constant): -ln ζ(α, xmin) - α * mean_log_x.
double mean_log_likelihood(double alpha, double q, double mean_log_x) {
  return -std::log(hurwitz_zeta(alpha, q)) - alpha * mean_log_x;
}

}  // namespace

double hurwitz_zeta(double s, double q) {
  SFS_REQUIRE(s > 1.0 && q > 0.0, "hurwitz_zeta needs s > 1, q > 0");
  // Direct summation plus an Euler–Maclaurin tail (validated to ~1e-10
  // against reference zeta values in the tests).
  constexpr int kDirect = 64;
  double sum = 0.0;
  for (int k = 0; k < kDirect; ++k) sum += std::pow(q + k, -s);
  const double tail_start = q + kDirect;
  sum += std::pow(tail_start, 1.0 - s) / (s - 1.0);
  sum += 0.5 * std::pow(tail_start, -s);
  sum += s / 12.0 * std::pow(tail_start, -s - 1.0);
  return sum;
}

PowerLawFit fit_power_law_tail(std::span<const std::size_t> data,
                               std::size_t xmin) {
  SFS_REQUIRE(xmin >= 1, "xmin must be >= 1");
  const auto tail = tail_of(data, xmin);
  SFS_REQUIRE(tail.size() >= 2, "need at least 2 tail observations");

  const double n = static_cast<double>(tail.size());
  const double q = static_cast<double>(xmin);
  double mean_log_x = 0.0;
  for (const std::size_t x : tail)
    mean_log_x += std::log(static_cast<double>(x));
  mean_log_x /= n;

  // Ternary search on the strictly concave mean log-likelihood.
  double lo = kAlphaLo;
  double hi = kAlphaHi;
  for (int iter = 0; iter < 200; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (mean_log_likelihood(m1, q, mean_log_x) <
        mean_log_likelihood(m2, q, mean_log_x)) {
      lo = m1;
    } else {
      hi = m2;
    }
  }

  PowerLawFit fit;
  fit.xmin = xmin;
  fit.tail_count = tail.size();
  fit.alpha = (lo + hi) / 2.0;
  // Asymptotic stderr from the observed Fisher information:
  // Var(α̂) = 1 / (n * d²/dα² ln ζ(α, xmin)).
  const double h = 1e-4;
  const double d2 =
      (std::log(hurwitz_zeta(fit.alpha + h, q)) -
       2.0 * std::log(hurwitz_zeta(fit.alpha, q)) +
       std::log(hurwitz_zeta(fit.alpha - h, q))) /
      (h * h);
  fit.alpha_stderr = d2 > 0.0 ? 1.0 / std::sqrt(n * d2) : 0.0;
  fit.ks_distance = power_law_ks(data, xmin, fit.alpha);
  return fit;
}

double power_law_ks(std::span<const std::size_t> data, std::size_t xmin,
                    double alpha) {
  SFS_REQUIRE(alpha > 1.0, "KS distance needs alpha > 1");
  const auto tail = tail_of(data, xmin);
  SFS_REQUIRE(!tail.empty(), "no tail observations");
  const double n = static_cast<double>(tail.size());
  const double z_min = hurwitz_zeta(alpha, static_cast<double>(xmin));

  double worst = 0.0;
  std::size_t i = 0;
  while (i < tail.size()) {
    std::size_t j = i;
    while (j < tail.size() && tail[j] == tail[i]) ++j;
    const auto x = static_cast<double>(tail[i]);
    // Model CCDF at x: P(X >= x) = ζ(α, x) / ζ(α, xmin).
    const double model_ge = hurwitz_zeta(alpha, x) / z_min;
    const double emp_ge = (n - static_cast<double>(i)) / n;   // P̂(X >= x)
    const double emp_gt = (n - static_cast<double>(j)) / n;   // P̂(X > x)
    worst = std::max(worst, std::abs(model_ge - emp_ge));
    const double model_gt = hurwitz_zeta(alpha, x + 1.0) / z_min;
    worst = std::max(worst, std::abs(model_gt - emp_gt));
    i = j;
  }
  return worst;
}

PowerLawFit fit_power_law_auto(std::span<const std::size_t> data,
                               std::size_t max_candidates) {
  SFS_REQUIRE(max_candidates >= 1, "need at least one candidate");
  // Candidate xmin values: distinct observed values with enough tail mass.
  std::vector<std::size_t> values(data.begin(), data.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<std::size_t> candidates;
  for (const std::size_t v : values) {
    if (v == 0) continue;
    // Require at least 10 tail points so the MLE is meaningful.
    std::size_t cnt = 0;
    for (const std::size_t x : data)
      if (x >= v) ++cnt;
    if (cnt >= 10) candidates.push_back(v);
  }
  SFS_REQUIRE(!candidates.empty(), "no viable xmin candidate");
  if (candidates.size() > max_candidates) {
    std::vector<std::size_t> sub;
    sub.reserve(max_candidates);
    for (std::size_t i = 0; i < max_candidates; ++i) {
      sub.push_back(candidates[i * candidates.size() / max_candidates]);
    }
    sub.erase(std::unique(sub.begin(), sub.end()), sub.end());
    candidates = std::move(sub);
  }

  PowerLawFit best;
  bool have = false;
  for (const std::size_t xmin : candidates) {
    const auto tail = tail_of(data, xmin);
    if (tail.size() < 2 || tail.front() == tail.back()) continue;
    const PowerLawFit fit = fit_power_law_tail(data, xmin);
    if (fit.alpha <= 1.0) continue;
    if (!have || fit.ks_distance < best.ks_distance) {
      best = fit;
      have = true;
    }
  }
  SFS_REQUIRE(have, "no candidate produced a valid power-law fit");
  return best;
}

DiscretePowerLawSampler::DiscretePowerLawSampler(double alpha,
                                                 std::size_t xmin,
                                                 std::size_t cutoff)
    : alpha_(alpha), xmin_(xmin), cutoff_(std::max(cutoff, xmin + 1)) {
  SFS_REQUIRE(alpha > 1.0, "sampling needs alpha > 1");
  SFS_REQUIRE(xmin >= 1, "xmin must be >= 1");
  std::vector<double> weights;
  weights.reserve(cutoff_ - xmin_ + 1);
  for (std::size_t x = xmin_; x < cutoff_; ++x) {
    weights.push_back(std::pow(static_cast<double>(x), -alpha));
  }
  // Final outcome: the whole tail [cutoff, inf), with its exact zeta mass.
  weights.push_back(hurwitz_zeta(alpha, static_cast<double>(cutoff_)));
  table_ = rng::AliasTable(weights);
}

std::size_t DiscretePowerLawSampler::sample(rng::Rng& rng) const {
  const std::size_t idx = table_.sample(rng);
  const std::size_t body = cutoff_ - xmin_;
  if (idx < body) return xmin_ + idx;
  // Tail: continuous inversion conditioned on X >= cutoff. The tail holds
  // a fraction ~ cutoff^{1-alpha} of the mass, so the small bias of the
  // continuous approximation here is negligible overall.
  return sample_power_law_approx(alpha_, cutoff_, rng);
}

std::size_t sample_power_law_approx(double alpha, std::size_t xmin,
                                    rng::Rng& rng) {
  SFS_REQUIRE(alpha > 1.0, "sampling needs alpha > 1");
  SFS_REQUIRE(xmin >= 1, "xmin must be >= 1");
  const double u = rng.uniform();
  const double x = (static_cast<double>(xmin) - 0.5) *
                       std::pow(1.0 - u, -1.0 / (alpha - 1.0)) +
                   0.5;
  const double capped = std::min(x, 1e18);
  return static_cast<std::size_t>(capped);
}

}  // namespace sfs::stats
