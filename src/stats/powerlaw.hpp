// Discrete power-law tail estimation (Clauset–Shalizi–Newman).
//
// Used by experiment E6 to verify that the Móri and Cooper–Frieze models are
// scale-free (the paper's premise), and to recover the predicted exponent
// 1 + 1/p for the Móri model.
//
// The exponent estimate is the *exact* discrete maximum-likelihood estimate
// (numeric maximization of the zeta-function likelihood), not the popular
// continuous-correction shortcut, which is badly biased for xmin < 6 — and
// degree distributions almost always have xmin in {1, 2, 3}.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rng/discrete.hpp"
#include "rng/random.hpp"

namespace sfs::stats {

/// Result of fitting P(D = d) ∝ d^{-alpha} for d >= xmin.
struct PowerLawFit {
  double alpha = 0.0;        // estimated exponent
  double alpha_stderr = 0.0; // asymptotic standard error of alpha
  std::size_t xmin = 1;      // tail threshold used
  std::size_t tail_count = 0;  // observations >= xmin
  double ks_distance = 1.0;  // KS distance between tail data and the model
};

/// Hurwitz zeta ζ(s, q) = Σ_{k≥0} (q+k)^{-s}, for s > 1, q > 0. Exposed
/// because the model CCDF P(X >= x) = ζ(α, x)/ζ(α, xmin) is useful to
/// callers plotting fits.
[[nodiscard]] double hurwitz_zeta(double s, double q);

/// Exact discrete MLE for a power law on {xmin, xmin+1, …}: maximizes
///   L(α) = -n·ln ζ(α, xmin) - α·Σ ln x_i
/// by ternary search (L is strictly concave). Requires at least 2 tail
/// observations, not all equal to xmin... all-equal samples are accepted
/// and produce an alpha at the search ceiling (steepest possible decay).
[[nodiscard]] PowerLawFit fit_power_law_tail(std::span<const std::size_t> data,
                                             std::size_t xmin);

/// Scans xmin over the observed values and returns the fit minimizing the
/// KS distance (the CSN model-selection rule). `max_candidates` caps the
/// number of distinct xmin values tried (evenly subsampled if exceeded).
[[nodiscard]] PowerLawFit fit_power_law_auto(std::span<const std::size_t> data,
                                             std::size_t max_candidates = 50);

/// KS distance between the empirical tail CCDF (data >= xmin) and the
/// theoretical discrete power law with the given alpha.
[[nodiscard]] double power_law_ks(std::span<const std::size_t> data,
                                  std::size_t xmin, double alpha);

/// Exact sampler for the discrete power law with exponent alpha > 1 on
/// {xmin, xmin+1, …}: alias table over [xmin, cutoff) plus a zeta-weighted
/// tail outcome resolved by continuous inversion (tail mass is ~1e-4 of
/// the distribution, so the approximation there is immaterial). Build once,
/// sample O(1).
class DiscretePowerLawSampler {
 public:
  DiscretePowerLawSampler(double alpha, std::size_t xmin,
                          std::size_t cutoff = 1u << 17);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::size_t xmin() const noexcept { return xmin_; }

  [[nodiscard]] std::size_t sample(rng::Rng& rng) const;

 private:
  double alpha_;
  std::size_t xmin_;
  std::size_t cutoff_;
  rng::AliasTable table_;  // outcomes: xmin..cutoff-1, then "tail"
};

/// One draw from the CSN continuous-approximation sampler
/// floor((xmin-1/2)(1-u)^{-1/(α-1)} + 1/2). Cheap and stateless but biased
/// for small xmin; prefer DiscretePowerLawSampler when exactness matters.
[[nodiscard]] std::size_t sample_power_law_approx(double alpha,
                                                  std::size_t xmin,
                                                  rng::Rng& rng);

}  // namespace sfs::stats
