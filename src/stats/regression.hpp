// Least-squares line fitting, including the log-log variant used to
// estimate scaling exponents (cost ~ c * n^b  ==>  log cost = log c + b log n).
//
// Every experiment that claims a polynomial growth rate reports the fitted
// slope, its standard error, and R^2, so that "slope ≈ 0.5" is a statistical
// statement rather than eyeballing.
#pragma once

#include <span>

namespace sfs::stats {

/// Ordinary least squares fit of y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double slope_stderr = 0.0;  // 0 for n <= 2
  double r_squared = 0.0;     // 1 for a perfect fit; 0 when y has no variance
  std::size_t count = 0;

  /// Predicted y at x.
  [[nodiscard]] double at(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Fits y against x. Requires xs.size() == ys.size() >= 2 and xs not all
/// equal.
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Fits log(y) against log(x): the returned slope is the scaling exponent b
/// in y ~ c x^b and the intercept is log(c). Requires all inputs > 0.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs,
                                      std::span<const double> ys);

}  // namespace sfs::stats
