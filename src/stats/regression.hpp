// Least-squares line fitting, including the log-log variant used to
// estimate scaling exponents (cost ~ c * n^b  ==>  log cost = log c + b log n).
//
// Every experiment that claims a polynomial growth rate reports the fitted
// slope, its standard error, and R^2, so that "slope ≈ 0.5" is a statistical
// statement rather than eyeballing. Degenerate inputs (all x equal, so the
// slope is undefined) return a flagged no-fit result instead of throwing:
// a rounding-collapsed size grid must not abort a multi-hour sweep, and
// callers are expected to branch on ok() before quoting a slope.
#pragma once

#include <span>

namespace sfs::stats {

/// Ordinary least squares fit of y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double slope_stderr = 0.0;  // 0 for n <= 2
  double r_squared = 0.0;     // 1 for a perfect fit; 0 when y has no variance
  std::size_t count = 0;      // points the fit actually used
  bool degenerate = false;    // x had no spread: slope undefined, no fit

  /// True when the fit is usable: at least two points and a well-defined
  /// slope. Default-constructed (count == 0) and degenerate fits are not.
  [[nodiscard]] bool ok() const noexcept { return count >= 2 && !degenerate; }

  /// Predicted y at x.
  [[nodiscard]] double at(double x) const noexcept {
    return intercept + slope * x;
  }
};

/// Fits y against x. Requires xs.size() == ys.size() >= 2. If all xs are
/// equal the result is flagged degenerate (slope 0, intercept = mean y,
/// ok() == false) rather than throwing.
[[nodiscard]] LinearFit fit_line(std::span<const double> xs,
                                 std::span<const double> ys);

/// Weighted least squares fit of y = intercept + slope * x with
/// non-negative per-point weights (w_i = 1 / Var(y_i) up to a common
/// scale). Requires equal sizes, >= 2 points, all weights finite and
/// >= 0, and total weight > 0. Points with weight 0 are excluded (count
/// reflects the points actually used); a weighted x-spread of zero or
/// fewer than two positive-weight points yields a degenerate result.
/// slope_stderr uses the conventional residual-scale estimate
/// sqrt((sum w r^2 / (k - 2)) / sxx) for k used points (0 for k <= 2).
[[nodiscard]] LinearFit fit_line_weighted(std::span<const double> xs,
                                          std::span<const double> ys,
                                          std::span<const double> weights);

/// Fits log(y) against log(x): the returned slope is the scaling exponent b
/// in y ~ c x^b and the intercept is log(c). Requires all inputs > 0.
[[nodiscard]] LinearFit fit_power_law(std::span<const double> xs,
                                      std::span<const double> ys);

/// Weighted log-log fit; `weights` apply to the log-transformed points
/// (w_i = 1 / Var(log y_i) up to scale — by the delta method
/// Var(log y) ≈ Var(y) / y^2, which is how sim/scaling derives them).
/// Requires all xs/ys > 0; weight semantics as fit_line_weighted.
[[nodiscard]] LinearFit fit_power_law_weighted(std::span<const double> xs,
                                               std::span<const double> ys,
                                               std::span<const double> weights);

}  // namespace sfs::stats
