#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cmath>

#include "base/check.hpp"
#include "stats/summary.hpp"

namespace sfs::stats {

BootstrapCi bootstrap_ci(
    std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double alpha, rng::Rng& rng) {
  SFS_REQUIRE(!data.empty(), "bootstrap of empty sample");
  SFS_REQUIRE(replicates >= 2, "need at least 2 bootstrap replicates");
  SFS_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  BootstrapCi ci;
  ci.replicates = replicates;
  ci.point = statistic(data);

  std::vector<double> resample(data.size());
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (double& x : resample) {
      x = data[static_cast<std::size_t>(rng.uniform_index(data.size()))];
    }
    stats.push_back(statistic(resample));
  }
  ci.lo = quantile(stats, alpha / 2.0);
  ci.hi = quantile(stats, 1.0 - alpha / 2.0);
  return ci;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> data,
                              std::size_t replicates, double alpha,
                              rng::Rng& rng) {
  return bootstrap_ci(
      data, [](std::span<const double> xs) { return summarize(xs).mean; },
      replicates, alpha, rng);
}

BootstrapCi bootstrap_grouped_ci(
    std::span<const std::vector<double>> groups,
    const std::function<double(std::span<const std::vector<double>>)>&
        statistic,
    std::size_t replicates, double alpha, rng::Rng& rng) {
  SFS_REQUIRE(!groups.empty(), "bootstrap of empty group set");
  for (const auto& g : groups) {
    SFS_REQUIRE(!g.empty(), "bootstrap group must be non-empty");
  }
  SFS_REQUIRE(replicates >= 2, "need at least 2 bootstrap replicates");
  SFS_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  BootstrapCi ci;
  ci.point = statistic(groups);

  std::vector<std::vector<double>> resampled(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    resampled[g].resize(groups[g].size());
  }
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const auto& src = groups[g];
      for (double& x : resampled[g]) {
        x = src[static_cast<std::size_t>(rng.uniform_index(src.size()))];
      }
    }
    const double s = statistic(resampled);
    if (std::isfinite(s)) stats.push_back(s);
  }
  if (stats.size() < 2) {
    ci.lo = ci.point;
    ci.hi = ci.point;
    ci.replicates = 0;
    return ci;
  }
  ci.replicates = stats.size();
  ci.lo = quantile(stats, alpha / 2.0);
  ci.hi = quantile(stats, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace sfs::stats
