#include "stats/bootstrap.hpp"

#include <algorithm>

#include "base/check.hpp"
#include "stats/summary.hpp"

namespace sfs::stats {

BootstrapCi bootstrap_ci(
    std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double alpha, rng::Rng& rng) {
  SFS_REQUIRE(!data.empty(), "bootstrap of empty sample");
  SFS_REQUIRE(replicates >= 2, "need at least 2 bootstrap replicates");
  SFS_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");

  BootstrapCi ci;
  ci.replicates = replicates;
  ci.point = statistic(data);

  std::vector<double> resample(data.size());
  std::vector<double> stats;
  stats.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (double& x : resample) {
      x = data[static_cast<std::size_t>(rng.uniform_index(data.size()))];
    }
    stats.push_back(statistic(resample));
  }
  ci.lo = quantile(stats, alpha / 2.0);
  ci.hi = quantile(stats, 1.0 - alpha / 2.0);
  return ci;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> data,
                              std::size_t replicates, double alpha,
                              rng::Rng& rng) {
  return bootstrap_ci(
      data, [](std::span<const double> xs) { return summarize(xs).mean; },
      replicates, alpha, rng);
}

}  // namespace sfs::stats
