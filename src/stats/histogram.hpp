// Histograms over integer observations (degrees, request counts), with
// logarithmic binning for heavy-tailed data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sfs::stats {

/// Exact integer histogram: bin i counts occurrences of value i.
class IntHistogram {
 public:
  void add(std::uint64_t value, std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t count(std::uint64_t value) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept;

  /// P(X = v) over the recorded sample.
  [[nodiscard]] double pmf(std::uint64_t value) const noexcept;
  /// P(X >= v) over the recorded sample.
  [[nodiscard]] double ccdf(std::uint64_t value) const noexcept;

  [[nodiscard]] std::span<const std::uint64_t> bins() const noexcept {
    return bins_;
  }

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

/// One bin of a logarithmic histogram.
struct LogBin {
  std::uint64_t lo = 0;     // inclusive
  std::uint64_t hi = 0;     // exclusive
  std::uint64_t count = 0;
  double density = 0.0;     // count / (total * width) — comparable across bins
  double center = 0.0;      // geometric center of [lo, hi)
};

/// Bins positive integer values into multiplicative buckets
/// [b^k, b^{k+1}). Values of 0 are rejected. `base` must be > 1.
[[nodiscard]] std::vector<LogBin> log_binned(
    std::span<const std::size_t> values, double base = 2.0);

}  // namespace sfs::stats
