#include "gen/kleinberg.hpp"

#include <cmath>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::VertexId;

KleinbergGrid::KleinbergGrid(std::size_t L, const KleinbergParams& params,
                             rng::Rng& rng)
    : L_(L), params_(params) {
  GenScratch scratch;
  build_graph(rng, scratch);
}

KleinbergGrid::KleinbergGrid(std::size_t L, const KleinbergParams& params,
                             rng::Rng& rng, GenScratch& scratch)
    : L_(L), params_(params) {
  build_graph(rng, scratch);
}

void KleinbergGrid::rebuild(std::size_t L, const KleinbergParams& params,
                            rng::Rng& rng, GenScratch& scratch) {
  L_ = L;
  params_ = params;
  build_graph(rng, scratch);
}

void KleinbergGrid::build_graph(rng::Rng& rng, GenScratch& scratch) {
  const std::size_t L = L_;
  SFS_REQUIRE(L >= 2, "grid side must be >= 2");
  SFS_REQUIRE(params_.r >= 0.0, "long-range exponent must be >= 0");
  const std::size_t n = checked_mul(L, L, "Kleinberg L*L overflows");

  // Enumerate all non-zero torus offsets once, weighted dist^{-r}; sampling
  // a long-range contact is then one alias-table draw. Exact law, O(L^2)
  // memory.
  std::vector<double>& weights = scratch.weights;
  auto& offsets = scratch.offsets;
  weights.clear();
  offsets.clear();
  weights.reserve(n - 1);
  offsets.reserve(n - 1);
  for (std::size_t dx = 0; dx < L; ++dx) {
    for (std::size_t dy = 0; dy < L; ++dy) {
      if (dx == 0 && dy == 0) continue;
      const std::size_t ax = std::min(dx, L - dx);
      const std::size_t ay = std::min(dy, L - dy);
      const double dist = static_cast<double>(ax + ay);
      offsets.emplace_back(static_cast<std::uint32_t>(dx),
                           static_cast<std::uint32_t>(dy));
      weights.push_back(std::pow(dist, -params_.r));
    }
  }
  const rng::AliasTable offset_dist{std::span<const double>(weights)};

  scratch.builder.reset(n);
  scratch.builder.reserve_edges(checked_add(
      checked_mul(2, n, "Kleinberg local edge count overflows"),
      checked_mul(params_.q, n, "Kleinberg long-range edge count overflows"),
      "Kleinberg edge count overflows"));
  // Local edges: each vertex emits "right" and "down" so each lattice edge
  // appears once; on the torus every vertex ends with 4 local neighbors.
  for (std::size_t x = 0; x < L; ++x) {
    for (std::size_t y = 0; y < L; ++y) {
      const VertexId v = vertex_at(x, y);
      scratch.builder.add_edge(v, vertex_at(x + 1, y));
      scratch.builder.add_edge(v, vertex_at(x, y + 1));
    }
  }
  // Long-range edges.
  for (std::size_t x = 0; x < L; ++x) {
    for (std::size_t y = 0; y < L; ++y) {
      const VertexId v = vertex_at(x, y);
      for (std::size_t k = 0; k < params_.q; ++k) {
        const auto [dx, dy] = offsets[offset_dist.sample(rng)];
        scratch.builder.add_edge(v, vertex_at(x + dx, y + dy));
      }
    }
  }
  scratch.builder.build_into(graph_);
}

std::pair<std::size_t, std::size_t> KleinbergGrid::coords(VertexId v) const {
  SFS_REQUIRE(v < num_vertices(), "vertex out of range");
  return {v / L_, v % L_};
}

VertexId KleinbergGrid::vertex_at(std::size_t x, std::size_t y) const {
  return static_cast<VertexId>((x % L_) * L_ + (y % L_));
}

std::size_t KleinbergGrid::lattice_distance(VertexId u, VertexId v) const {
  const auto [ux, uy] = coords(u);
  const auto [vx, vy] = coords(v);
  const std::size_t dx = ux > vx ? ux - vx : vx - ux;
  const std::size_t dy = uy > vy ? uy - vy : vy - uy;
  return std::min(dx, L_ - dx) + std::min(dy, L_ - dy);
}

}  // namespace sfs::gen
