#include "gen/degree_sequence.hpp"

#include <numeric>

#include "base/check.hpp"
#include "rng/zipf.hpp"

namespace sfs::gen {

std::vector<std::uint32_t> power_law_degree_sequence(
    std::size_t n, const PowerLawSequenceParams& params, rng::Rng& rng) {
  std::vector<std::uint32_t> degrees;
  power_law_degree_sequence(n, params, rng, degrees);
  return degrees;
}

void power_law_degree_sequence(std::size_t n,
                               const PowerLawSequenceParams& params,
                               rng::Rng& rng,
                               std::vector<std::uint32_t>& out) {
  SFS_REQUIRE(n >= 2, "need at least two vertices");
  SFS_REQUIRE(params.exponent > 1.0, "degree exponent must exceed 1");
  const std::uint32_t d_max =
      params.d_max != 0 ? params.d_max
                        : rng::natural_cutoff(n, params.exponent);
  SFS_REQUIRE(params.d_min >= 1 && params.d_min <= d_max,
              "inconsistent degree bounds");
  const rng::BoundedZipf dist(params.d_min, d_max, params.exponent);

  out.resize(n);
  for (auto& d : out) d = dist.sample(rng);
  if (stub_count(out) % 2 != 0) {
    out[static_cast<std::size_t>(rng.uniform_index(n))] += 1;
  }
}

std::size_t stub_count(const std::vector<std::uint32_t>& degrees) {
  return std::accumulate(degrees.begin(), degrees.end(), std::size_t{0});
}

}  // namespace sfs::gen
