// Reusable generation scratch: the generator-layer counterpart of
// search::SearchWorkspace.
//
// Portfolio sweeps at small n are dominated by graph *generation*, and
// almost all of that cost is allocation: every replication used to build a
// fresh preference bag, stub list, weight table, dedup set, GraphBuilder
// edge log and CSR arrays, only to free them a few microseconds later.
// GenScratch owns all of those buffers so a worker can recycle them across
// replications. Every generator has a scratch-taking overload that writes
// into a caller-owned Graph (recycled through GraphBuilder::build_into) and
// is bit-identical to the fresh-allocation path: same algorithm, same RNG
// consumption, only the buffer lifetimes differ.
//
// Threading: a GenScratch must never be shared by two concurrent
// generator calls — the replication harnesses hold one per worker (see
// sim/sweep.cpp's WorkerState and the scratch overload of
// sim::measure_scaling), mirroring the one-SearchWorkspace-per-worker rule.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace sfs::gen {

/// Arena of generator working buffers. Default-constructed empty; grows to
/// the high-water mark of the graphs generated through it and stays there.
struct GenScratch {
  /// Edge log + CSR packing scratch, recycled via reset()/build_into().
  graph::GraphBuilder builder;
  /// Intermediate graph for two-stage generators (the merged Móri graph's
  /// underlying tree). Never hand this object to a generator as its output.
  graph::Graph tmp_graph;
  /// Cooper–Frieze process edge log.
  std::vector<graph::Edge> edges;
  /// Preferential-attachment bag (Barabási–Albert, Cooper–Frieze) / Móri
  /// head bag: one entry per unit of attachment weight.
  std::vector<graph::VertexId> pref_bag;
  /// Per-step target list (Barabási–Albert).
  std::vector<graph::VertexId> targets;
  /// Configuration-model stub list.
  std::vector<graph::VertexId> stubs;
  /// Móri father array.
  std::vector<graph::VertexId> fathers;
  /// Móri indegree array.
  std::vector<std::uint32_t> in_degree;
  /// Power-law degree sequence.
  std::vector<std::uint32_t> degrees;
  /// Kleinberg long-range offset weights.
  std::vector<double> weights;
  /// Kleinberg torus offsets, slot-aligned with `weights`.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> offsets;
  /// Unordered-pair dedup set (Erdős–Rényi G(n,m), erased configuration
  /// model). clear() keeps the bucket array, so steady-state reuse does
  /// not re-hash from scratch.
  std::unordered_set<std::uint64_t> seen;
};

}  // namespace sfs::gen
