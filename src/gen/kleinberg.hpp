// Kleinberg's navigable small-world grid (Kle00), the positive contrast to
// the paper's negative result: with long-range links drawn ∝ d^{-r} on a
// 2-D lattice, greedy geographic routing takes O(log² n) steps iff r = 2
// and polynomial time otherwise.
//
// We use an L×L torus with Manhattan (lattice) distance. The torus variant
// (instead of Kleinberg's bordered lattice) keeps every vertex statistically
// identical, which simplifies both the generator and the routing analysis;
// the navigability dichotomy at r = d = 2 is unchanged (this is the common
// convention in follow-up work). Documented as a substitution in DESIGN.md.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/discrete.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

struct KleinbergParams {
  /// Long-range exponent r >= 0 (r = 2 is the navigable point in 2-D).
  double r = 2.0;
  /// Long-range out-edges per vertex.
  std::size_t q = 1;
};

/// An L×L torus with 4 local (lattice) edges per vertex plus q long-range
/// out-edges per vertex drawn with P(offset) ∝ dist^{-r}. Owns the Graph
/// and the coordinate geometry used by greedy routing.
class KleinbergGrid {
 public:
  /// Builds the grid; requires L >= 2.
  KleinbergGrid(std::size_t L, const KleinbergParams& params, rng::Rng& rng);

  /// Scratch-reusing constructor: same grid, but the offset/weight tables
  /// and CSR packing buffers come from `scratch`.
  KleinbergGrid(std::size_t L, const KleinbergParams& params, rng::Rng& rng,
                GenScratch& scratch);

  /// Regenerates the grid in place (new L/params/draws), recycling both
  /// the scratch buffers and this grid's own Graph storage. Bit-identical
  /// to constructing a fresh grid with the same arguments and rng state.
  void rebuild(std::size_t L, const KleinbergParams& params, rng::Rng& rng,
               GenScratch& scratch);

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] std::size_t side() const noexcept { return L_; }
  [[nodiscard]] std::size_t num_vertices() const noexcept { return L_ * L_; }
  [[nodiscard]] const KleinbergParams& params() const noexcept {
    return params_;
  }

  /// Coordinates of a vertex id (row-major layout).
  [[nodiscard]] std::pair<std::size_t, std::size_t> coords(
      graph::VertexId v) const;
  /// Vertex id of coordinates (taken mod L).
  [[nodiscard]] graph::VertexId vertex_at(std::size_t x, std::size_t y) const;

  /// Manhattan distance on the torus.
  [[nodiscard]] std::size_t lattice_distance(graph::VertexId u,
                                             graph::VertexId v) const;

 private:
  void build_graph(rng::Rng& rng, GenScratch& scratch);

  std::size_t L_;
  KleinbergParams params_;
  graph::Graph graph_;
};

}  // namespace sfs::gen
