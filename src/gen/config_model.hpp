// Molloy–Reed configuration model (MR95): uniform random multigraph with a
// prescribed degree sequence, built by pairing stubs uniformly at random.
//
// This is the "pure random graph" family of the paper's related-work
// section: degrees of neighbors are independent, in contrast with the
// evolving models where degree and age correlate — the distinction the
// paper stresses when explaining why mean-field search analyses (Adamic et
// al.) do not transfer to evolving graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "gen/degree_sequence.hpp"
#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

struct ConfigModelOptions {
  /// If true, self-loops and parallel edges produced by the pairing are
  /// deleted afterwards ("erased configuration model"); realized degrees
  /// may then fall slightly below the prescription, but the degree
  /// distribution tail is preserved.
  bool erase_defects = false;
};

/// Wires the given degree sequence (sum must be even). Multigraph unless
/// erase_defects. Edge orientation is arbitrary (tail = first stub).
[[nodiscard]] graph::Graph configuration_model(
    const std::vector<std::uint32_t>& degrees, const ConfigModelOptions& opts,
    rng::Rng& rng);

/// Convenience: power-law degree sequence + wiring in one call.
[[nodiscard]] graph::Graph power_law_configuration_graph(
    std::size_t n, const PowerLawSequenceParams& seq_params,
    const ConfigModelOptions& opts, rng::Rng& rng);

/// Scratch-reusing overloads: regenerate `out` in place, recycling the
/// stub list, dedup set, degree buffer and CSR arrays. Bit-identical to
/// the fresh path.
void configuration_model(const std::vector<std::uint32_t>& degrees,
                         const ConfigModelOptions& opts, rng::Rng& rng,
                         GenScratch& scratch, graph::Graph& out);
void power_law_configuration_graph(std::size_t n,
                                   const PowerLawSequenceParams& seq_params,
                                   const ConfigModelOptions& opts,
                                   rng::Rng& rng, GenScratch& scratch,
                                   graph::Graph& out);

}  // namespace sfs::gen
