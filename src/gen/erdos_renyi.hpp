// Erdős–Rényi random graphs: the no-structure baseline (Poisson degrees,
// like Kleinberg's model) used in tests and as a control in experiments.
#pragma once

#include <cstddef>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

/// G(n, m): exactly m edges, each a uniform ordered pair without
/// replacement over unordered vertex pairs (no loops, no parallel edges).
/// Requires m <= n(n-1)/2.
[[nodiscard]] graph::Graph erdos_renyi_gnm(std::size_t n, std::size_t m,
                                           rng::Rng& rng);

/// G(n, p): each unordered pair independently with probability prob.
/// Uses geometric skipping, O(n + m) expected time.
[[nodiscard]] graph::Graph erdos_renyi_gnp(std::size_t n, double prob,
                                           rng::Rng& rng);

/// Scratch-reusing overloads: regenerate `out` in place, recycling the
/// pair-dedup set and CSR buffers. Bit-identical to the fresh path.
void erdos_renyi_gnm(std::size_t n, std::size_t m, rng::Rng& rng,
                     GenScratch& scratch, graph::Graph& out);
void erdos_renyi_gnp(std::size_t n, double prob, rng::Rng& rng,
                     GenScratch& scratch, graph::Graph& out);

}  // namespace sfs::gen
