// Degree sequence generation for the Molloy–Reed configuration model.
//
// Adamic et al. (2001) and Sarshar et al. (2004) work in the "pure random
// power-law graph" family: fix P(D = d) ∝ d^{-k} for d in [d_min, d_max]
// with k strictly between 2 and 3, then wire stubs uniformly at random.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rng/random.hpp"

namespace sfs::gen {

struct PowerLawSequenceParams {
  /// Degree-distribution exponent k (> 1; Adamic et al. use 2 < k < 3).
  double exponent = 2.3;
  std::uint32_t d_min = 1;
  /// Maximum degree. 0 means "use the natural cutoff n^{1/(k-1)}".
  std::uint32_t d_max = 0;
};

/// Draws an n-term i.i.d. power-law degree sequence and repairs parity: if
/// the stub total is odd, one uniformly chosen vertex gets +1 (the minimal
/// perturbation that keeps the sequence graphical as a multigraph).
[[nodiscard]] std::vector<std::uint32_t> power_law_degree_sequence(
    std::size_t n, const PowerLawSequenceParams& params, rng::Rng& rng);

/// Buffer-reusing overload: fills `out` (resized to n) in place.
/// Bit-identical to the allocating overload for the same rng state.
void power_law_degree_sequence(std::size_t n,
                               const PowerLawSequenceParams& params,
                               rng::Rng& rng, std::vector<std::uint32_t>& out);

/// Sum of a degree sequence (the stub count; must be even to wire).
[[nodiscard]] std::size_t stub_count(const std::vector<std::uint32_t>& degrees);

}  // namespace sfs::gen
