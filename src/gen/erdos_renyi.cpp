#include "gen/erdos_renyi.hpp"

#include <cmath>
#include <unordered_set>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

Graph erdos_renyi_gnm(std::size_t n, std::size_t m, rng::Rng& rng) {
  SFS_REQUIRE(n >= 2, "need at least two vertices");
  const std::size_t max_edges = n * (n - 1) / 2;
  SFS_REQUIRE(m <= max_edges, "too many edges requested");

  GraphBuilder b(n);
  b.reserve_edges(m);
  // Rejection over unordered pairs; fine for m well under the maximum, and
  // still correct (if slow) near it.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.uniform_index(n));
    auto v = static_cast<VertexId>(rng.uniform_index(n - 1));
    if (v >= u) ++v;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    if (seen.insert(key).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph erdos_renyi_gnp(std::size_t n, double prob, rng::Rng& rng) {
  SFS_REQUIRE(n >= 1, "need at least one vertex");
  SFS_REQUIRE(prob >= 0.0 && prob <= 1.0, "probability out of range");
  GraphBuilder b(n);
  if (prob <= 0.0) return b.build();
  if (prob >= 1.0) {
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v) b.add_edge(u, v);
    return b.build();
  }
  // Batagelj–Brandes geometric skipping over the lexicographic pair order.
  const double log_q = std::log(1.0 - prob);
  std::int64_t u = 1;
  std::int64_t v = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (u < nn) {
    const double r = 1.0 - rng.uniform();
    v += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
    while (v >= u && u < nn) {
      v -= u;
      ++u;
    }
    if (u < nn) {
      b.add_edge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    }
  }
  return b.build();
}

}  // namespace sfs::gen
