#include "gen/erdos_renyi.hpp"

#include <cmath>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::VertexId;

Graph erdos_renyi_gnm(std::size_t n, std::size_t m, rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  erdos_renyi_gnm(n, m, rng, scratch, g);
  return g;
}

void erdos_renyi_gnm(std::size_t n, std::size_t m, rng::Rng& rng,
                     GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(n >= 2, "need at least two vertices");
  const std::size_t max_edges = n * (n - 1) / 2;
  SFS_REQUIRE(m <= max_edges, "too many edges requested");

  scratch.builder.reset(n);
  scratch.builder.reserve_edges(m);
  // Rejection over unordered pairs; fine for m well under the maximum, and
  // still correct (if slow) near it.
  auto& seen = scratch.seen;
  seen.clear();
  seen.reserve(m);
  while (seen.size() < m) {
    const auto u = static_cast<VertexId>(rng.uniform_index(n));
    auto v = static_cast<VertexId>(rng.uniform_index(n - 1));
    if (v >= u) ++v;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
    if (seen.insert(key).second) scratch.builder.add_edge(u, v);
  }
  scratch.builder.build_into(out);
}

Graph erdos_renyi_gnp(std::size_t n, double prob, rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  erdos_renyi_gnp(n, prob, rng, scratch, g);
  return g;
}

void erdos_renyi_gnp(std::size_t n, double prob, rng::Rng& rng,
                     GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(n >= 1, "need at least one vertex");
  SFS_REQUIRE(prob >= 0.0 && prob <= 1.0, "probability out of range");
  scratch.builder.reset(n);
  if (prob <= 0.0) {
    scratch.builder.build_into(out);
    return;
  }
  if (prob >= 1.0) {
    for (VertexId u = 0; u < n; ++u)
      for (VertexId v = u + 1; v < n; ++v) scratch.builder.add_edge(u, v);
    scratch.builder.build_into(out);
    return;
  }
  // Batagelj–Brandes geometric skipping over the lexicographic pair order.
  const double log_q = std::log(1.0 - prob);
  std::int64_t u = 1;
  std::int64_t v = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (u < nn) {
    const double r = 1.0 - rng.uniform();
    v += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
    while (v >= u && u < nn) {
      v -= u;
      ++u;
    }
    if (u < nn) {
      scratch.builder.add_edge(static_cast<VertexId>(u),
                               static_cast<VertexId>(v));
    }
  }
  scratch.builder.build_into(out);
}

}  // namespace sfs::gen
