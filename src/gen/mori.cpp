#include "gen/mori.hpp"

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::kNoVertex;
using graph::VertexId;

MoriProcess::MoriProcess(const MoriParams& params) : params_(params) {
  SFS_REQUIRE(params.p >= 0.0 && params.p <= 1.0, "Mori p must be in [0,1]");
  init_seed_state();
}

MoriProcess::MoriProcess(const MoriParams& params, GenScratch& scratch)
    : params_(params) {
  SFS_REQUIRE(params.p >= 0.0 && params.p <= 1.0, "Mori p must be in [0,1]");
  fathers_.swap(scratch.fathers);
  head_bag_.swap(scratch.pref_bag);
  in_degree_.swap(scratch.in_degree);
  init_seed_state();
}

void MoriProcess::init_seed_state() {
  fathers_.assign({kNoVertex, 0});  // vertex 1 attaches to vertex 0
  head_bag_.assign({0});
  in_degree_.assign({1, 0});
}

void MoriProcess::release_scratch(GenScratch& scratch) noexcept {
  fathers_.swap(scratch.fathers);
  head_bag_.swap(scratch.pref_bag);
  in_degree_.swap(scratch.in_degree);
}

VertexId MoriProcess::step(rng::Rng& rng) {
  // The new vertex is t (paper numbering t+1 = size()+1). When it chooses,
  // there are `size()` candidate vertices and `size() - 1` edges.
  const auto candidates = static_cast<double>(fathers_.size());
  const auto edges = candidates - 1.0;
  const double p = params_.p;
  const double w_pref = p * edges;
  const double w_unif = (1.0 - p) * candidates;
  const double total = w_pref + w_unif;
  SFS_CHECK(total > 0.0, "degenerate Mori weights");

  VertexId father;
  if (rng.uniform() * total < w_pref) {
    // Indegree-proportional: uniform element of the bag of past heads.
    father = head_bag_[static_cast<std::size_t>(
        rng.uniform_index(head_bag_.size()))];
  } else {
    father = static_cast<VertexId>(rng.uniform_index(fathers_.size()));
  }
  fathers_.push_back(father);
  head_bag_.push_back(father);
  in_degree_.push_back(0);
  ++in_degree_[father];
  return father;
}

void MoriProcess::grow_to(std::size_t n, rng::Rng& rng) {
  SFS_REQUIRE(n >= 2, "Mori tree needs at least 2 vertices");
  while (fathers_.size() < n) (void)step(rng);
}

std::size_t MoriProcess::in_degree(VertexId v) const {
  SFS_REQUIRE(v < in_degree_.size(), "vertex out of range");
  return in_degree_[v];
}

Graph MoriProcess::graph() const {
  GraphBuilder b(fathers_.size());
  b.reserve_edges(fathers_.size() - 1);
  for (std::size_t v = 1; v < fathers_.size(); ++v) {
    b.add_edge(static_cast<VertexId>(v), fathers_[v]);
  }
  return b.build();
}

void MoriProcess::graph_into(GenScratch& scratch, graph::Graph& out) const {
  scratch.builder.reset(fathers_.size());
  scratch.builder.reserve_edges(fathers_.size() - 1);
  for (std::size_t v = 1; v < fathers_.size(); ++v) {
    scratch.builder.add_edge(static_cast<VertexId>(v), fathers_[v]);
  }
  scratch.builder.build_into(out);
}

Graph mori_tree(std::size_t n, const MoriParams& params, rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  mori_tree(n, params, rng, scratch, g);
  return g;
}

void mori_tree(std::size_t n, const MoriParams& params, rng::Rng& rng,
               GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(n >= 2, "Mori tree needs at least 2 vertices");
  MoriProcess proc(params, scratch);
  proc.grow_to(n, rng);
  proc.graph_into(scratch, out);
  proc.release_scratch(scratch);
}

std::vector<VertexId> fathers(const Graph& tree) {
  std::vector<VertexId> f(tree.num_vertices(), kNoVertex);
  SFS_REQUIRE(tree.num_vertices() >= 1, "empty tree");
  SFS_REQUIRE(tree.num_edges() == tree.num_vertices() - 1,
              "not a recursive tree: wrong edge count");
  for (const graph::Edge& e : tree.edges()) {
    SFS_REQUIRE(e.head < e.tail, "edge does not point to an older vertex");
    SFS_REQUIRE(f[e.tail] == kNoVertex, "vertex has two out-edges");
    f[e.tail] = e.head;
  }
  for (std::size_t v = 1; v < f.size(); ++v) {
    SFS_REQUIRE(f[v] != kNoVertex, "non-root vertex without a father");
  }
  return f;
}

Graph merge_consecutive(const Graph& g, std::size_t m) {
  GenScratch scratch;
  Graph out;
  merge_consecutive(g, m, scratch, out);
  return out;
}

void merge_consecutive(const Graph& g, std::size_t m, GenScratch& scratch,
                       graph::Graph& out) {
  SFS_REQUIRE(m >= 1, "merge factor must be >= 1");
  SFS_REQUIRE(g.num_vertices() % m == 0,
              "vertex count must be a multiple of the merge factor");
  SFS_REQUIRE(&g != &out, "in-place merge is not supported");
  const std::size_t n = g.num_vertices() / m;
  scratch.builder.reset(n);
  scratch.builder.reserve_edges(g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    scratch.builder.add_edge(static_cast<VertexId>(e.tail / m),
                             static_cast<VertexId>(e.head / m));
  }
  scratch.builder.build_into(out);
}

Graph merged_mori_graph(std::size_t n, std::size_t m, const MoriParams& params,
                        rng::Rng& rng) {
  GenScratch scratch;
  Graph out;
  merged_mori_graph(n, m, params, rng, scratch, out);
  return out;
}

void merged_mori_graph(std::size_t n, std::size_t m, const MoriParams& params,
                       rng::Rng& rng, GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(n >= 1 && m >= 1, "need n, m >= 1");
  const std::size_t total = checked_mul(n, m, "merged Mori n*m overflows");
  SFS_REQUIRE(total >= 2, "underlying tree needs at least 2 vertices");
  mori_tree(total, params, rng, scratch, scratch.tmp_graph);
  merge_consecutive(scratch.tmp_graph, m, scratch, out);
}

}  // namespace sfs::gen
