#include "gen/config_model.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::VertexId;

Graph configuration_model(const std::vector<std::uint32_t>& degrees,
                          const ConfigModelOptions& opts, rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  configuration_model(degrees, opts, rng, scratch, g);
  return g;
}

void configuration_model(const std::vector<std::uint32_t>& degrees,
                         const ConfigModelOptions& opts, rng::Rng& rng,
                         GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(!degrees.empty(), "empty degree sequence");
  const std::size_t stubs = stub_count(degrees);
  SFS_REQUIRE(stubs % 2 == 0, "stub count must be even");

  std::vector<VertexId>& stub_list = scratch.stubs;
  stub_list.clear();
  stub_list.reserve(stubs);
  for (std::size_t v = 0; v < degrees.size(); ++v) {
    for (std::uint32_t k = 0; k < degrees[v]; ++k)
      stub_list.push_back(static_cast<VertexId>(v));
  }
  rng.shuffle(stub_list);

  scratch.builder.reset(degrees.size());
  scratch.builder.reserve_edges(stubs / 2);
  if (!opts.erase_defects) {
    for (std::size_t i = 0; i + 1 < stub_list.size(); i += 2) {
      scratch.builder.add_edge(stub_list[i], stub_list[i + 1]);
    }
  } else {
    // Erased model: skip loops and repeated unordered pairs.
    auto& seen = scratch.seen;
    seen.clear();
    seen.reserve(stubs / 2);
    for (std::size_t i = 0; i + 1 < stub_list.size(); i += 2) {
      const VertexId u = stub_list[i];
      const VertexId v = stub_list[i + 1];
      if (u == v) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(u, v)) << 32) |
          std::max(u, v);
      if (!seen.insert(key).second) continue;
      scratch.builder.add_edge(u, v);
    }
  }
  scratch.builder.build_into(out);
}

Graph power_law_configuration_graph(std::size_t n,
                                    const PowerLawSequenceParams& seq_params,
                                    const ConfigModelOptions& opts,
                                    rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  power_law_configuration_graph(n, seq_params, opts, rng, scratch, g);
  return g;
}

void power_law_configuration_graph(std::size_t n,
                                   const PowerLawSequenceParams& seq_params,
                                   const ConfigModelOptions& opts,
                                   rng::Rng& rng, GenScratch& scratch,
                                   graph::Graph& out) {
  power_law_degree_sequence(n, seq_params, rng, scratch.degrees);
  configuration_model(scratch.degrees, opts, rng, scratch, out);
}

}  // namespace sfs::gen
