// The Cooper–Frieze general web-graph model (paper §1; Cooper & Frieze,
// "A general model of web graphs", RSA 22(3), 2003), rephrased as in the
// reproduced paper to use *indegree* for preferential choices.
//
// Evolution, per time step:
//   * with probability alpha, procedure NEW: a new vertex v is added
//     together with j ~ q outgoing edges from v; each terminal (head) is
//     chosen uniformly over existing vertices with probability beta, and
//     preferentially otherwise;
//   * with probability 1 - alpha, procedure OLD: an existing initial vertex
//     w is chosen (uniformly with probability delta, preferentially
//     otherwise) and j ~ p new outgoing edges are added from w; each
//     terminal is chosen uniformly with probability gamma, preferentially
//     otherwise.
//
// Preferential selection is indegree-proportional by default (the paper's
// rephrasing, enabling the full 0 < p <= 1 parameter range of the Móri
// analysis); total-degree preference is available behind a flag for
// comparison with the original CF03 statement.
//
// The process starts from a single vertex with one self-loop (so that
// preferential weights are initially positive) and is connected by
// construction: every NEW vertex immediately links into the existing graph,
// and OLD only adds edges.
#pragma once

#include <cstddef>
#include <vector>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/discrete.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

/// Which degree drives preferential choices.
enum class Preference {
  kInDegree,    // the reproduced paper's rephrasing
  kTotalDegree, // the original CF03 convention
};

/// Full parameter set. Defaults give a balanced mixed model.
struct CooperFriezeParams {
  /// P(procedure NEW) per step; the paper's theorem needs 0 < alpha < 1.
  double alpha = 0.5;
  /// P(terminal chosen uniformly | NEW); 1-beta preferential.
  double beta = 0.5;
  /// P(terminal chosen uniformly | OLD); 1-gamma preferential.
  double gamma = 0.5;
  /// P(initial vertex of OLD chosen uniformly); 1-delta preferential.
  double delta = 0.5;
  /// Out-edge count distribution for OLD: weights for j = 1, 2, ....
  std::vector<double> p = {1.0};
  /// Out-edge count distribution for NEW: weights for j = 1, 2, ....
  std::vector<double> q = {1.0};
  Preference preference = Preference::kInDegree;

  /// Validates ranges; throws std::invalid_argument if inconsistent.
  void validate() const;
};

/// Result of running the process: the graph plus vertex birth order.
struct CooperFriezeGraph {
  graph::Graph graph;
  /// Vertices in birth order; birth_order[k] is the id of the k-th vertex
  /// added (ids equal indices here since vertices are numbered by birth,
  /// kept for clarity and future-proofing).
  std::vector<graph::VertexId> birth_order;
  /// Number of evolution steps performed.
  std::size_t steps = 0;
};

/// Runs the process until the graph has exactly `n_vertices` vertices
/// (counting the seed vertex), then stops. Expected number of steps is
/// about n_vertices / alpha.
[[nodiscard]] CooperFriezeGraph cooper_frieze(std::size_t n_vertices,
                                              const CooperFriezeParams& params,
                                              rng::Rng& rng);

/// Runs the process for exactly `steps` steps regardless of vertex count.
[[nodiscard]] CooperFriezeGraph cooper_frieze_steps(
    std::size_t steps, const CooperFriezeParams& params, rng::Rng& rng);

/// Scratch-reusing overloads: regenerate `out` in place, recycling the
/// process edge log, preference bag, birth-order vector and CSR buffers.
/// Bit-identical to the fresh paths.
void cooper_frieze(std::size_t n_vertices, const CooperFriezeParams& params,
                   rng::Rng& rng, GenScratch& scratch, CooperFriezeGraph& out);
void cooper_frieze_steps(std::size_t steps, const CooperFriezeParams& params,
                         rng::Rng& rng, GenScratch& scratch,
                         CooperFriezeGraph& out);

/// Incremental form, mirroring MoriProcess, used by the Cooper–Frieze
/// equivalence experiment (E3/E10) to observe edge endpoints as drawn.
class CooperFriezeProcess {
 public:
  explicit CooperFriezeProcess(const CooperFriezeParams& params);

  /// Same, but borrows the edge log and preference bag from `scratch` so
  /// repeated processes recycle capacity. Call release_scratch(scratch)
  /// when done; the scratch must outlive the process.
  CooperFriezeProcess(const CooperFriezeParams& params, GenScratch& scratch);

  /// Performs one evolution step. Returns true if the step executed
  /// procedure NEW (added a vertex).
  bool step(rng::Rng& rng);

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] std::size_t num_steps() const noexcept { return steps_; }

  /// Heads (terminals) of the edges emitted by the most recent step.
  [[nodiscard]] const std::vector<graph::VertexId>& last_heads()
      const noexcept {
    return last_heads_;
  }

  /// Tail (initial vertex) of the edges emitted by the most recent step:
  /// the new vertex for NEW steps, the chosen existing vertex for OLD.
  [[nodiscard]] graph::VertexId last_tail() const noexcept {
    return last_tail_;
  }

  /// Materializes the current graph (including the seed self-loop).
  [[nodiscard]] graph::Graph graph() const;

  /// Materializes into `out`, recycling its buffers via scratch.builder.
  void graph_into(GenScratch& scratch, graph::Graph& out) const;

  /// Returns borrowed buffers to `scratch` (pair of the scratch-borrowing
  /// constructor). The process must not be used afterwards.
  void release_scratch(GenScratch& scratch) noexcept;

 private:
  void init_seed_state();

  [[nodiscard]] graph::VertexId pick_terminal(double uniform_prob,
                                              rng::Rng& rng);
  [[nodiscard]] graph::VertexId pick_initial(rng::Rng& rng);
  [[nodiscard]] std::size_t sample_count(const rng::CdfSampler& dist,
                                         rng::Rng& rng);

  CooperFriezeParams params_;
  rng::CdfSampler p_dist_;
  rng::CdfSampler q_dist_;
  std::vector<graph::Edge> edges_;
  std::vector<graph::VertexId> pref_bag_;  // indegree or total-degree units
  std::vector<graph::VertexId> last_heads_;
  graph::VertexId last_tail_ = graph::kNoVertex;
  std::size_t num_vertices_ = 0;
  std::size_t steps_ = 0;
};

}  // namespace sfs::gen
