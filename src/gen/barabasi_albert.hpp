// Barabási–Albert preferential attachment (BA99), the ubiquitous scale-free
// baseline the paper contrasts against: preferential by *total* degree, m
// edges per new vertex, degree exponent 3.
#pragma once

#include <cstddef>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

struct BarabasiAlbertParams {
  /// Out-edges per new vertex (>= 1).
  std::size_t m = 1;
  /// If true, the m targets of one vertex are resampled until distinct
  /// (classic BA); if false parallel edges may occur.
  bool distinct_targets = true;
};

/// Generates a BA graph with n vertices. The seed is a single vertex with a
/// self-loop (the standard Bollobás–Riordan convention for m = 1, merged
/// for general m); vertex ids are in birth order.
[[nodiscard]] graph::Graph barabasi_albert(std::size_t n,
                                           const BarabasiAlbertParams& params,
                                           rng::Rng& rng);

/// Scratch-reusing overload: regenerates `out` in place, recycling the
/// preference bag, target list and CSR buffers. Bit-identical to the
/// fresh-allocation overload for the same (n, params, rng state).
void barabasi_albert(std::size_t n, const BarabasiAlbertParams& params,
                     rng::Rng& rng, GenScratch& scratch, graph::Graph& out);

}  // namespace sfs::gen
