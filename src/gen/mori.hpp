// The Móri random tree and the merged m-out Móri graph (paper §1).
//
// Móri tree G_t: starts at time t = 2 with vertices {1, 2} (paper ids) and a
// single edge 2 -> 1. At each later time t, vertex t is added with one
// out-edge to an older vertex u chosen with probability proportional to
//
//     p * d_t(u) + (1 - p),
//
// where d_t(u) is the *indegree* of u at time t and 0 < p <= 1. Writing
// W_t = p (t-2) + (1-p)(t-1) for the normalizing constant (t-2 edges and
// t-1 candidate vertices exist when vertex t chooses), the law is sampled
// exactly by a two-stage mixture: with probability p (t-2) / W_t pick a
// uniform element of the bag of past edge heads (indegree-proportional),
// otherwise pick a uniform vertex of [1, t-1]. No mean-field approximation
// is involved.
//
// Special cases (tested): p -> 0 is the uniform random recursive tree;
// p = 1 is degenerate — only vertex 1 ever has positive weight, so G_t is
// the star centered at vertex 1.
//
// Merged m-out graph G^{(m)}: build the Móri tree of size n*m and merge
// paper vertices m(i-1)+1 .. mi into merged vertex i. The result is a
// connected multigraph on n vertices with n*m - 1 edges (self-loops and
// parallel edges possible).
//
// Ids: this header returns 0-based ids; paper vertex t is id t-1.
#pragma once

#include <cstddef>
#include <vector>

#include "gen/scratch.hpp"
#include "graph/graph.hpp"
#include "rng/random.hpp"

namespace sfs::gen {

/// Parameters of the Móri process.
struct MoriParams {
  /// Preferential-attachment weight, 0 < p <= 1 per the paper. p = 0 is
  /// also accepted and yields the uniform random recursive tree.
  double p = 0.5;
};

/// Generates the Móri tree with n >= 2 vertices. The returned graph has
/// exactly n - 1 edges; edge k (0-based) is the out-edge of vertex k+1, so
/// edge order is insertion-time order.
[[nodiscard]] graph::Graph mori_tree(std::size_t n, const MoriParams& params,
                                     rng::Rng& rng);

/// Father (head of the unique out-edge) of every vertex in a Móri-shaped
/// tree; fathers[0] == kNoVertex for the root. Requires that every vertex
/// v >= 1 has exactly one out-edge, to a vertex < v (a "recursive tree").
[[nodiscard]] std::vector<graph::VertexId> fathers(const graph::Graph& tree);

/// Generates the merged m-out Móri graph with n >= 1 merged vertices:
/// builds the Móri tree on n*m vertices and contracts groups of m
/// consecutive vertices. Requires n*m >= 2.
[[nodiscard]] graph::Graph merged_mori_graph(std::size_t n, std::size_t m,
                                             const MoriParams& params,
                                             rng::Rng& rng);

/// Contracts groups of `m` consecutive vertices of `g` (0-based: vertices
/// [m*i, m*(i+1)) become vertex i). Exposed separately so tests can check
/// the merge independently of the tree process. Requires
/// g.num_vertices() % m == 0.
[[nodiscard]] graph::Graph merge_consecutive(const graph::Graph& g,
                                             std::size_t m);

/// Scratch-reusing overloads: regenerate `out` in place, recycling the
/// father array, head bag and CSR buffers. Bit-identical to the fresh
/// paths. The merged overload uses scratch.tmp_graph for the underlying
/// tree, so never pass scratch.tmp_graph as `out`.
void mori_tree(std::size_t n, const MoriParams& params, rng::Rng& rng,
               GenScratch& scratch, graph::Graph& out);
void merge_consecutive(const graph::Graph& g, std::size_t m,
                       GenScratch& scratch, graph::Graph& out);
void merged_mori_graph(std::size_t n, std::size_t m, const MoriParams& params,
                       rng::Rng& rng, GenScratch& scratch, graph::Graph& out);

/// Incremental Móri process, exposed for the equivalence/event machinery
/// (core/equivalence.hpp) which needs to observe fathers as they are drawn.
class MoriProcess {
 public:
  /// Initializes the t = 2 state (vertices {0, 1}, edge 1 -> 0).
  explicit MoriProcess(const MoriParams& params);

  /// Same, but borrows the working buffers (father array, head bag,
  /// indegrees) from `scratch` so repeated processes recycle capacity.
  /// Call release_scratch(scratch) when done to return them; the scratch
  /// must outlive the process.
  MoriProcess(const MoriParams& params, GenScratch& scratch);

  /// Number of vertices so far (>= 2).
  [[nodiscard]] std::size_t size() const noexcept {
    return fathers_.size();
  }

  /// Adds the next vertex; returns the father it attached to (0-based).
  graph::VertexId step(rng::Rng& rng);

  /// Runs until `n` vertices exist.
  void grow_to(std::size_t n, rng::Rng& rng);

  /// fathers()[v] is the father of v (kNoVertex for v = 0).
  [[nodiscard]] const std::vector<graph::VertexId>& all_fathers()
      const noexcept {
    return fathers_;
  }

  /// Indegree of v in the current tree.
  [[nodiscard]] std::size_t in_degree(graph::VertexId v) const;

  /// Materializes the current tree as a Graph.
  [[nodiscard]] graph::Graph graph() const;

  /// Materializes into `out`, recycling its buffers via scratch.builder.
  void graph_into(GenScratch& scratch, graph::Graph& out) const;

  /// Returns borrowed buffers to `scratch` (pair of the scratch-borrowing
  /// constructor). The process must not be used afterwards.
  void release_scratch(GenScratch& scratch) noexcept;

 private:
  void init_seed_state();

  MoriParams params_;
  std::vector<graph::VertexId> fathers_;   // fathers_[0] = kNoVertex
  std::vector<graph::VertexId> head_bag_;  // one entry per received edge
  std::vector<std::uint32_t> in_degree_;
};

}  // namespace sfs::gen
