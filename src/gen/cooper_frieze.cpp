#include "gen/cooper_frieze.hpp"

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Edge;
using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

namespace {

bool is_probability(double x) { return x >= 0.0 && x <= 1.0; }

bool is_count_distribution(const std::vector<double>& w) {
  if (w.empty()) return false;
  double total = 0.0;
  for (const double x : w) {
    if (x < 0.0) return false;
    total += x;
  }
  return total > 0.0;
}

}  // namespace

void CooperFriezeParams::validate() const {
  SFS_REQUIRE(alpha > 0.0 && alpha < 1.0,
              "Cooper-Frieze alpha must be in (0,1)");
  SFS_REQUIRE(is_probability(beta), "beta must be in [0,1]");
  SFS_REQUIRE(is_probability(gamma), "gamma must be in [0,1]");
  SFS_REQUIRE(is_probability(delta), "delta must be in [0,1]");
  SFS_REQUIRE(is_count_distribution(p),
              "p must be a nonempty nonnegative weight vector");
  SFS_REQUIRE(is_count_distribution(q),
              "q must be a nonempty nonnegative weight vector");
}

CooperFriezeProcess::CooperFriezeProcess(const CooperFriezeParams& params)
    : params_(params),
      p_dist_(std::span<const double>(params.p)),
      q_dist_(std::span<const double>(params.q)) {
  params_.validate();
  init_seed_state();
}

CooperFriezeProcess::CooperFriezeProcess(const CooperFriezeParams& params,
                                         GenScratch& scratch)
    : params_(params),
      p_dist_(std::span<const double>(params.p)),
      q_dist_(std::span<const double>(params.q)) {
  params_.validate();
  edges_.swap(scratch.edges);
  pref_bag_.swap(scratch.pref_bag);
  edges_.clear();
  pref_bag_.clear();
  init_seed_state();
}

void CooperFriezeProcess::init_seed_state() {
  // Seed graph: one vertex with a self-loop, so every degree notion starts
  // positive and preferential choice is well defined from step one.
  num_vertices_ = 1;
  edges_.push_back(Edge{0, 0});
  pref_bag_.push_back(0);  // head unit
  if (params_.preference == Preference::kTotalDegree) {
    pref_bag_.push_back(0);  // tail unit as well
  }
}

void CooperFriezeProcess::release_scratch(GenScratch& scratch) noexcept {
  edges_.swap(scratch.edges);
  pref_bag_.swap(scratch.pref_bag);
}

std::size_t CooperFriezeProcess::sample_count(const rng::CdfSampler& dist,
                                              rng::Rng& rng) {
  return dist.sample(rng) + 1;  // weights are for j = 1, 2, ...
}

VertexId CooperFriezeProcess::pick_terminal(double uniform_prob,
                                            rng::Rng& rng) {
  if (rng.bernoulli(uniform_prob)) {
    return static_cast<VertexId>(rng.uniform_index(num_vertices_));
  }
  return pref_bag_[static_cast<std::size_t>(
      rng.uniform_index(pref_bag_.size()))];
}

VertexId CooperFriezeProcess::pick_initial(rng::Rng& rng) {
  // Initial vertex of procedure OLD: delta uniform, else preferential.
  return pick_terminal(params_.delta, rng);
}

bool CooperFriezeProcess::step(rng::Rng& rng) {
  ++steps_;
  last_heads_.clear();
  const bool is_new = rng.bernoulli(params_.alpha);
  VertexId tail;
  std::size_t j;
  double uniform_prob;
  if (is_new) {
    tail = static_cast<VertexId>(num_vertices_++);
    j = sample_count(q_dist_, rng);
    uniform_prob = params_.beta;
  } else {
    tail = pick_initial(rng);
    j = sample_count(p_dist_, rng);
    uniform_prob = params_.gamma;
  }
  last_tail_ = tail;
  for (std::size_t k = 0; k < j; ++k) {
    // NEW: terminals are chosen among the pre-existing vertices; the brand
    // new vertex never links to itself (it has no incident edge yet and the
    // uniform choice ranges over vertices that existed before the step).
    VertexId head;
    if (is_new) {
      if (rng.bernoulli(uniform_prob)) {
        head = static_cast<VertexId>(rng.uniform_index(num_vertices_ - 1));
      } else {
        head = pref_bag_[static_cast<std::size_t>(
            rng.uniform_index(pref_bag_.size()))];
      }
    } else {
      head = pick_terminal(uniform_prob, rng);
    }
    edges_.push_back(Edge{tail, head});
    last_heads_.push_back(head);
    pref_bag_.push_back(head);
    if (params_.preference == Preference::kTotalDegree) {
      pref_bag_.push_back(tail);
    }
  }
  return is_new;
}

Graph CooperFriezeProcess::graph() const {
  GraphBuilder b(num_vertices_);
  b.reserve_edges(edges_.size());
  for (const Edge& e : edges_) b.add_edge(e.tail, e.head);
  return b.build();
}

void CooperFriezeProcess::graph_into(GenScratch& scratch,
                                     Graph& out) const {
  scratch.builder.reset(num_vertices_);
  scratch.builder.reserve_edges(edges_.size());
  for (const Edge& e : edges_) scratch.builder.add_edge(e.tail, e.head);
  scratch.builder.build_into(out);
}

namespace {

void finalize_cf(CooperFriezeProcess& proc, GenScratch& scratch,
                 CooperFriezeGraph& out) {
  proc.graph_into(scratch, out.graph);
  proc.release_scratch(scratch);
  out.steps = proc.num_steps();
  out.birth_order.resize(out.graph.num_vertices());
  for (VertexId v = 0; v < out.graph.num_vertices(); ++v)
    out.birth_order[v] = v;
}

}  // namespace

CooperFriezeGraph cooper_frieze(std::size_t n_vertices,
                                const CooperFriezeParams& params,
                                rng::Rng& rng) {
  GenScratch scratch;
  CooperFriezeGraph out;
  cooper_frieze(n_vertices, params, rng, scratch, out);
  return out;
}

void cooper_frieze(std::size_t n_vertices, const CooperFriezeParams& params,
                   rng::Rng& rng, GenScratch& scratch,
                   CooperFriezeGraph& out) {
  SFS_REQUIRE(n_vertices >= 1, "need at least one vertex");
  CooperFriezeProcess proc(params, scratch);
  while (proc.num_vertices() < n_vertices) (void)proc.step(rng);
  finalize_cf(proc, scratch, out);
}

CooperFriezeGraph cooper_frieze_steps(std::size_t steps,
                                      const CooperFriezeParams& params,
                                      rng::Rng& rng) {
  GenScratch scratch;
  CooperFriezeGraph out;
  cooper_frieze_steps(steps, params, rng, scratch, out);
  return out;
}

void cooper_frieze_steps(std::size_t steps, const CooperFriezeParams& params,
                         rng::Rng& rng, GenScratch& scratch,
                         CooperFriezeGraph& out) {
  CooperFriezeProcess proc(params, scratch);
  for (std::size_t s = 0; s < steps; ++s) (void)proc.step(rng);
  finalize_cf(proc, scratch, out);
}

}  // namespace sfs::gen
