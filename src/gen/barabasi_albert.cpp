#include "gen/barabasi_albert.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::VertexId;

Graph barabasi_albert(std::size_t n, const BarabasiAlbertParams& params,
                      rng::Rng& rng) {
  GenScratch scratch;
  Graph g;
  barabasi_albert(n, params, rng, scratch, g);
  return g;
}

void barabasi_albert(std::size_t n, const BarabasiAlbertParams& params,
                     rng::Rng& rng, GenScratch& scratch, graph::Graph& out) {
  SFS_REQUIRE(n >= 1, "need at least one vertex");
  SFS_REQUIRE(params.m >= 1, "BA needs m >= 1");
  // Checked reserve math: (n - 1) * m wraps for large n and would silently
  // under-reserve (or "pass" a fits-in-EdgeId test) instead of failing.
  const std::size_t total_edges = checked_add(
      1, checked_mul(n - 1, params.m, "BA edge count (n-1)*m overflows"),
      "BA edge count overflows");
  SFS_REQUIRE(total_edges <= static_cast<std::size_t>(graph::kNoEdge),
              "BA edge count exceeds the edge id range");

  scratch.builder.reset(n);
  scratch.builder.reserve_edges(total_edges);
  // Total-degree bag: one entry per edge endpoint.
  std::vector<VertexId>& bag = scratch.pref_bag;
  bag.clear();
  bag.reserve(checked_mul(2, total_edges, "BA bag size overflows"));

  // Seed: vertex 0 with a self-loop (degree 2).
  scratch.builder.add_edge(0, 0);
  bag.push_back(0);
  bag.push_back(0);

  std::vector<VertexId>& targets = scratch.targets;
  for (VertexId v = 1; v < n; ++v) {
    targets.clear();
    const std::size_t want = std::min<std::size_t>(params.m, v);
    // With distinct_targets we can ask for at most v distinct older
    // vertices; resample duplicates (degree mass >> m makes retries rare).
    while (targets.size() < want) {
      const VertexId t =
          bag[static_cast<std::size_t>(rng.uniform_index(bag.size()))];
      if (params.distinct_targets &&
          std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    for (const VertexId t : targets) {
      scratch.builder.add_edge(v, t);
      bag.push_back(v);
      bag.push_back(t);
    }
  }
  scratch.builder.build_into(out);
}

}  // namespace sfs::gen
