#include "gen/barabasi_albert.hpp"

#include <algorithm>

#include "graph/builder.hpp"

namespace sfs::gen {

using graph::Graph;
using graph::GraphBuilder;
using graph::VertexId;

Graph barabasi_albert(std::size_t n, const BarabasiAlbertParams& params,
                      rng::Rng& rng) {
  SFS_REQUIRE(n >= 1, "need at least one vertex");
  SFS_REQUIRE(params.m >= 1, "BA needs m >= 1");

  GraphBuilder b(n);
  b.reserve_edges(1 + (n - 1) * params.m);
  // Total-degree bag: one entry per edge endpoint.
  std::vector<VertexId> bag;
  bag.reserve(2 * (1 + (n - 1) * params.m));

  // Seed: vertex 0 with a self-loop (degree 2).
  b.add_edge(0, 0);
  bag.push_back(0);
  bag.push_back(0);

  std::vector<VertexId> targets;
  for (VertexId v = 1; v < n; ++v) {
    targets.clear();
    const std::size_t want = std::min<std::size_t>(params.m, v);
    // With distinct_targets we can ask for at most v distinct older
    // vertices; resample duplicates (degree mass >> m makes retries rare).
    while (targets.size() < want) {
      const VertexId t =
          bag[static_cast<std::size_t>(rng.uniform_index(bag.size()))];
      if (params.distinct_targets &&
          std::find(targets.begin(), targets.end(), t) != targets.end()) {
        continue;
      }
      targets.push_back(t);
    }
    for (const VertexId t : targets) {
      b.add_edge(v, t);
      bag.push_back(v);
      bag.push_back(t);
    }
  }
  return b.build();
}

}  // namespace sfs::gen
